"""The frame / shot / clip hierarchy of §2.

* A **frame** is the occurrence unit for object detection.
* A **shot** is a fixed-length run of frames — the input unit of action
  recognition (typical length 10–30 frames in the literature).
* A **clip** is a fixed-length run of shots — the unit at which query
  predicates are decided (Eqs. 1–3) and whose length is the tunable
  parameter studied in Figures 4–5.
* A **sequence** is a run of clips — the query result granularity; sequences
  are represented with :class:`repro.utils.intervals.IntervalSet` over clip
  ids rather than a class here.

:class:`VideoGeometry` owns all index arithmetic between the three layers so
that off-by-one conversions exist in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import VideoModelError
from repro.utils.intervals import Interval, IntervalSet
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class VideoGeometry:
    """Fixed layout of frames into shots and shots into clips.

    Parameters mirror the example in Figure 1: with ``frames_per_shot=10``
    and ``shots_per_clip=5``, each clip spans 50 frames (two seconds at
    25 fps).
    """

    frames_per_shot: int = 10
    shots_per_clip: int = 5
    fps: float = 25.0

    def __post_init__(self) -> None:
        require_positive_int(self.frames_per_shot, "frames_per_shot")
        require_positive_int(self.shots_per_clip, "shots_per_clip")
        if self.fps <= 0:
            raise VideoModelError(f"fps must be positive; got {self.fps}")

    @property
    def frames_per_clip(self) -> int:
        return self.frames_per_shot * self.shots_per_clip

    # -- frame <-> shot ---------------------------------------------------------

    def shot_of_frame(self, frame: int) -> int:
        self._check_index(frame, "frame")
        return frame // self.frames_per_shot

    def frames_of_shot(self, shot: int) -> Interval:
        self._check_index(shot, "shot")
        start = shot * self.frames_per_shot
        return Interval(start, start + self.frames_per_shot - 1)

    # -- frame <-> clip ----------------------------------------------------------

    def clip_of_frame(self, frame: int) -> int:
        self._check_index(frame, "frame")
        return frame // self.frames_per_clip

    def frames_of_clip(self, clip: int) -> Interval:
        self._check_index(clip, "clip")
        start = clip * self.frames_per_clip
        return Interval(start, start + self.frames_per_clip - 1)

    # -- shot <-> clip ------------------------------------------------------------

    def clip_of_shot(self, shot: int) -> int:
        self._check_index(shot, "shot")
        return shot // self.shots_per_clip

    def shots_of_clip(self, clip: int) -> Interval:
        self._check_index(clip, "clip")
        start = clip * self.shots_per_clip
        return Interval(start, start + self.shots_per_clip - 1)

    # -- durations -------------------------------------------------------------------

    def seconds_to_frames(self, seconds: float) -> int:
        return int(round(seconds * self.fps))

    def frames_to_seconds(self, frames: int) -> float:
        return frames / self.fps

    def with_clip_frames(self, frames_per_clip: int) -> "VideoGeometry":
        """A geometry with the same shot length but a different clip length
        (must be a whole number of shots) — used by the clip-size sweeps."""
        require_positive_int(frames_per_clip, "frames_per_clip")
        if frames_per_clip % self.frames_per_shot != 0:
            raise VideoModelError(
                f"clip length {frames_per_clip} is not a multiple of the shot "
                f"length {self.frames_per_shot}"
            )
        return replace(
            self, shots_per_clip=frames_per_clip // self.frames_per_shot
        )

    # -- interval conversions ------------------------------------------------------

    def frame_interval_to_clips(
        self, frames: Interval, min_cover: float = 0.5
    ) -> Interval | None:
        """Clips covered by a frame interval.

        A clip counts as covered when at least ``min_cover`` of its frames
        lie inside the interval; this is how frame-level ground truth is
        projected to clip-level result sequences for evaluation.  Returns
        ``None`` if no clip reaches the threshold.
        """
        if not 0.0 < min_cover <= 1.0:
            raise VideoModelError(f"min_cover must be in (0, 1]; got {min_cover}")
        first = self.clip_of_frame(frames.start)
        last = self.clip_of_frame(frames.end)
        needed = min_cover * self.frames_per_clip
        while first <= last:
            covered = self.frames_of_clip(first).intersection(frames)
            if covered is not None and len(covered) >= needed:
                break
            first += 1
        else:  # pragma: no cover - loop always breaks or exits via condition
            return None
        while last >= first:
            covered = self.frames_of_clip(last).intersection(frames)
            if covered is not None and len(covered) >= needed:
                break
            last -= 1
        if first > last:
            return None
        return Interval(first, last)

    def frame_set_to_clips(
        self, frames: IntervalSet, min_cover: float = 0.5
    ) -> IntervalSet:
        """Project a frame-level interval set to clip ids (see above)."""
        clips = []
        for iv in frames:
            projected = self.frame_interval_to_clips(iv, min_cover=min_cover)
            if projected is not None:
                clips.append(projected)
        return IntervalSet(clips)

    def clip_set_to_frames(self, clips: IntervalSet) -> IntervalSet:
        """Expand clip-id intervals back to the frames they span."""
        return IntervalSet(
            Interval(
                iv.start * self.frames_per_clip,
                (iv.end + 1) * self.frames_per_clip - 1,
            )
            for iv in clips
        )

    def frame_set_to_shots(self, frames: IntervalSet, min_cover: float = 0.5) -> IntervalSet:
        """Project frame intervals to shot indices (for action ground truth)."""
        if not 0.0 < min_cover <= 1.0:
            raise VideoModelError(f"min_cover must be in (0, 1]; got {min_cover}")
        shots: list[Interval] = []
        needed = min_cover * self.frames_per_shot
        for iv in frames:
            first = self.shot_of_frame(iv.start)
            last = self.shot_of_frame(iv.end)
            while first <= last:
                covered = self.frames_of_shot(first).intersection(iv)
                if covered is not None and len(covered) >= needed:
                    break
                first += 1
            while last >= first:
                covered = self.frames_of_shot(last).intersection(iv)
                if covered is not None and len(covered) >= needed:
                    break
                last -= 1
            if first <= last:
                shots.append(Interval(first, last))
        return IntervalSet(shots)

    @staticmethod
    def _check_index(value: int, name: str) -> None:
        if value < 0:
            raise VideoModelError(f"{name} index must be >= 0; got {value}")


@dataclass(frozen=True)
class VideoMeta:
    """Identity and extent of one video.

    The trailing partial clip (fewer than ``frames_per_clip`` frames) is
    dropped from processing, matching the fixed-length clip definition of
    §2; ``n_frames`` below therefore reports the usable extent.
    """

    video_id: str
    n_frames: int
    geometry: VideoGeometry = field(default_factory=VideoGeometry)
    title: str = ""

    def __post_init__(self) -> None:
        require_positive_int(self.n_frames, "n_frames")
        if self.n_clips == 0:
            raise VideoModelError(
                f"video {self.video_id!r} is shorter than one clip "
                f"({self.n_frames} < {self.geometry.frames_per_clip} frames)"
            )

    @property
    def n_clips(self) -> int:
        return self.n_frames // self.geometry.frames_per_clip

    @property
    def n_shots(self) -> int:
        return self.n_clips * self.geometry.shots_per_clip

    @property
    def usable_frames(self) -> int:
        return self.n_clips * self.geometry.frames_per_clip

    @property
    def duration_seconds(self) -> float:
        return self.geometry.frames_to_seconds(self.n_frames)

    def clip_ids(self) -> range:
        return range(self.n_clips)

    def with_geometry(self, geometry: VideoGeometry) -> "VideoMeta":
        """The same video re-segmented under a different geometry (the
        clip-size experiments re-slice identical content)."""
        return VideoMeta(
            video_id=self.video_id,
            n_frames=self.n_frames,
            geometry=geometry,
            title=self.title,
        )


@dataclass(frozen=True)
class ClipView:
    """A clip of a specific video: the unit handed to Algorithm 2."""

    video: VideoMeta
    clip_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.clip_id < self.video.n_clips:
            raise VideoModelError(
                f"clip {self.clip_id} outside video "
                f"{self.video.video_id!r} (0..{self.video.n_clips - 1})"
            )

    @property
    def frames(self) -> Interval:
        return self.video.geometry.frames_of_clip(self.clip_id)

    @property
    def shots(self) -> Interval:
        return self.video.geometry.shots_of_clip(self.clip_id)
