"""RL008 fixture — linted under a fake src/repro/core path by the tests.

The test suite feeds this file through a *single-file* project index with
an empty version lock, so every versioned class here draws the
"not recorded in the version lock" finding — that is the rule refusing
to trust an unrecorded lattice.  The bump/stale checks against a
populated lock are exercised by the cross-module tests in
``test_project_rules.py``.
"""

from repro.errors import ConfigurationError

BUNDLE_VERSION = 2

GHOST_VERSION = "not-an-integer"


class BadUnlocked:  # line 18: finding — versioned but not in the lock
    def __init__(self):
        self._pos = 0

    def state_dict(self):
        return {"version": BUNDLE_VERSION, "pos": self._pos}

    def load_state_dict(self, state):
        version = int(state.get("version", 1))
        if not 1 <= version <= BUNDLE_VERSION:
            raise ConfigurationError(f"unsupported version {version}")
        self._pos = int(state["pos"])
        return self


class BadNoDispatch:  # line 33: finding — unlocked, like every class here
    def __init__(self):
        self._pos = 0

    def state_dict(self):
        return {"version": BUNDLE_VERSION, "pos": self._pos}

    def load_state_dict(self, state):  # line 40: finding — ignores "version"
        self._pos = int(state["pos"])
        return self


class BadReadsButNeverRejects:  # line 45: finding — unlocked
    def __init__(self):
        self._pos = 0

    def state_dict(self):
        return {"version": BUNDLE_VERSION, "pos": self._pos}

    def load_state_dict(self, state):  # line 52: finding — no taxonomy raise
        self._pos = int(state["pos"]) if state.get("version") else 0
        return self


class BadMissingConstant:  # line 57: finding — GHOST_VERSION is not an int
    def __init__(self):
        self._pos = 0

    def state_dict(self):
        return {"version": GHOST_VERSION, "pos": self._pos}

    def load_state_dict(self, state):
        version = int(state.get("version", 1))
        if version != 1:
            raise ConfigurationError(f"unsupported version {version}")
        self._pos = int(state["pos"])
        return self


class GoodUnversioned:
    """No version pairing at all — RL008 has nothing to hold it to."""

    def __init__(self):
        self._pos = 0

    def state_dict(self):
        return {"pos": self._pos}

    def load_state_dict(self, state):
        self._pos = int(state["pos"])
        return self
