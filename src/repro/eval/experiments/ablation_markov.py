"""Ablation — i.i.d. vs Markov-dependent critical values (footnote 7).

Detector errors are bursty, violating the i.i.d. Bernoulli assumption of
the Naus machinery.  The finite-Markov-chain-embedding extension
(:mod:`repro.scanstats.markov`) computes exact critical values under a
two-state Markov noise model.  This ablation compares, across burstiness
levels:

* the critical value each model prescribes at equal marginal rate, and
* the realised false-positive rate of windows at those critical values.

Expected shape: the Markov critical value is ≥ the i.i.d. one, and at high
burstiness the i.i.d. quota under-controls the false positive rate while
the Markov quota keeps it at ``α``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.detectors.noise import alternating_indicator
from repro.scanstats.critical import critical_value
from repro.scanstats.markov import MarkovChainSpec, markov_critical_value
from repro.utils.rng import derive_rng
from repro.utils.tables import render_table


@dataclass(frozen=True)
class MarkovAblationRow:
    burstiness: float
    k_iid: int
    k_markov: int
    fpr_at_iid: float
    fpr_at_markov: float


@dataclass(frozen=True)
class MarkovAblationResult:
    alpha: float
    rows: tuple[MarkovAblationRow, ...]

    def render(self) -> str:
        return render_table(
            ["burstiness", "k (iid)", "k (markov)", "FPR @ iid k", "FPR @ markov k"],
            [
                (r.burstiness, r.k_iid, r.k_markov, r.fpr_at_iid, r.fpr_at_markov)
                for r in self.rows
            ],
            title=f"Ablation — iid vs Markov critical values (α={self.alpha})",
            precision=4,
        )


def _window_fpr(
    events: np.ndarray, w: int, k: int
) -> float:
    """Fraction of length-``w`` windows whose event count reaches ``k``."""
    sums = np.convolve(events.astype(np.int32), np.ones(w, dtype=np.int32), "valid")
    return float(np.mean(sums >= k))


def run(
    seed: int = 0,
    p: float = 0.05,
    w: int = 12,
    n: int = 240,
    alpha: float = 0.05,
    burstiness_grid: Sequence[float] = (1.0, 3.0, 6.0, 10.0),
    stream_length: int = 200_000,
) -> MarkovAblationResult:
    rng = derive_rng(seed, "markov-ablation")
    rows = []
    k_iid = critical_value(p, w, n, alpha)
    for burstiness in burstiness_grid:
        chain = MarkovChainSpec.from_marginal(p, burstiness)
        k_markov = markov_critical_value(chain, w, n, alpha)
        # Simulate the chain: its mean on-run length is 1 / (1 - p11).
        mean_on = 1.0 / max(1e-9, 1.0 - chain.p11)
        events = alternating_indicator(rng, stream_length, p, mean_run=mean_on)
        rows.append(
            MarkovAblationRow(
                burstiness=burstiness,
                k_iid=k_iid,
                k_markov=k_markov,
                fpr_at_iid=_window_fpr(events, w, k_iid),
                fpr_at_markov=_window_fpr(events, w, k_markov),
            )
        )
    return MarkovAblationResult(alpha=alpha, rows=tuple(rows))
