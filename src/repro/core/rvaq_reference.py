"""Reference (pre-vectorisation) implementation of RVAQ + TBClip.

This module preserves the original row-at-a-time, pure-Python execution of
Algorithms 4–5 exactly as it stood before the offline top-K path was
vectorised.  It exists for two reasons:

* **Equivalence oracle** — the optimised :class:`repro.core.rvaq.RVAQ`
  must produce bit-identical ranked tuples, ``AccessStats`` and
  ``iterations`` in serial mode; the test suite checks that against this
  implementation on randomized repositories.
* **Benchmark baseline** — ``benchmarks/bench_offline_topk.py`` measures
  the speedup of the vectorised path against this one and records the
  trajectory in ``BENCH_offline_topk.json``.

It is intentionally *not* maintained for speed; do not use it in query
paths.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import AbstractSet, Any

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.rvaq import RankedSequence, TopKResult
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.errors import QueryError
from repro.storage.access import AccessStats
from repro.storage.repository import VideoRepository
from repro.storage.table import ClipScoreTable
from repro.utils.intervals import IntervalSet, intersect_all


class ReferenceTBClipIterator:
    """The original row-at-a-time TBClip (Algorithm 5)."""

    def __init__(
        self,
        action_table: ClipScoreTable,
        object_tables: list[ClipScoreTable],
        scoring: ScoringScheme,
        skip: AbstractSet[int],
        stats: AccessStats,
        bottom_rounds_per_call: int = 8,
        need_bottom: bool = True,
    ) -> None:
        self._tables: list[ClipScoreTable] = [action_table, *object_tables]
        self._action_table = action_table
        self._object_tables = object_tables
        self._scoring = scoring
        self._skip = skip  # live reference — RVAQ grows it while iterating
        self._stats = stats
        self._bottom_budget = max(1, bottom_rounds_per_call)
        self._need_bottom = need_bottom

        self._stamp_top = 0
        self._stamp_btm = 0
        self._seen_top: set[int] = set()
        self._seen_btm: set[int] = set()
        self._processed_top: set[int] = set()
        self._processed_btm: set[int] = set()
        self._heap_top: list[tuple[float, int]] = []  # (-score, cid)
        self._heap_btm: list[tuple[float, int]] = []  # (score, cid)
        self._frontier_rows_top: list[float] | None = None
        self._frontier_rows_btm: list[float] | None = None
        self._score_cache: dict[int, float] = {}

    def next_pair(self) -> tuple[int | None, float, int | None, float]:
        c_top, s_top = self._next_extreme(top=True)
        if self._need_bottom:
            c_btm, s_btm = self._next_extreme(top=False)
        else:
            c_btm, s_btm = None, 0.0
        if c_top is not None:
            self._processed_top.add(c_top)
        if c_btm is not None:
            self._processed_btm.add(c_btm)
        return c_top, s_top, c_btm, s_btm

    @property
    def exhausted(self) -> bool:
        if not self._direction_done(True):
            return False
        return not self._need_bottom or self._direction_done(False)

    def _table_len(self) -> int:
        return min(len(t) for t in self._tables)

    def _heap(self, top: bool) -> list[tuple[float, int]]:
        return self._heap_top if top else self._heap_btm

    def _clean_heap(self, top: bool) -> tuple[float, int] | None:
        heap = self._heap(top)
        processed = self._processed_top if top else self._processed_btm
        while heap:
            _, cid = heap[0]
            if cid in processed or cid in self._skip:
                heapq.heappop(heap)
                continue
            return heap[0]
        return None

    def _direction_done(self, top: bool) -> bool:
        stamp = self._stamp_top if top else self._stamp_btm
        if stamp < self._table_len():
            return False
        return self._clean_heap(top) is None

    def _frontier_bound(self, top: bool) -> float:
        rows = self._frontier_rows_top if top else self._frontier_rows_btm
        if rows is None:
            return float("inf") if top else float("-inf")
        return self._scoring.clip_score(rows[0], rows[1:])

    def _advance(self, top: bool) -> bool:
        stamp = self._stamp_top if top else self._stamp_btm
        if stamp >= self._table_len():
            return False
        seen = self._seen_top if top else self._seen_btm
        heap = self._heap(top)
        frontier_rows: list[float] = []
        for table in self._tables:
            if top:
                cid, score = table.sorted_row(stamp, self._stats)
            else:
                cid, score = table.reverse_row(stamp, self._stats)
            frontier_rows.append(score)
            if cid in seen:
                continue
            seen.add(cid)
            if cid in self._skip:
                continue
            full = self._full_score(cid)
            heapq.heappush(heap, ((-full, cid) if top else (full, cid)))
        if top:
            self._stamp_top += 1
            self._frontier_rows_top = frontier_rows
        else:
            self._stamp_btm += 1
            self._frontier_rows_btm = frontier_rows
        return True

    def _full_score(self, cid: int) -> float:
        cached = self._score_cache.get(cid)
        if cached is not None:
            return cached
        action_score = self._action_table.random_access(cid, self._stats)
        object_scores = [
            t.random_access(cid, self._stats) for t in self._object_tables
        ]
        score = self._scoring.clip_score(action_score, object_scores)
        self._score_cache[cid] = score
        return score

    def _next_extreme(self, top: bool) -> tuple[int | None, float]:
        heap = self._heap(top)
        rounds = 0
        while True:
            head = self._clean_heap(top)
            if head is not None:
                key, cid = head
                score = -key if top else key
                frontier = self._frontier_bound(top)
                beats = score >= frontier if top else score <= frontier
                if beats or self._stamp_at_end(top):
                    heapq.heappop(heap)
                    return cid, score
            if not top and rounds >= self._bottom_budget:
                return None, 0.0
            if not self._advance(top):
                head = self._clean_heap(top)
                if head is not None:
                    key, cid = heapq.heappop(heap)
                    return cid, (-key if top else key)
                return None, 0.0
            rounds += 1

    def _stamp_at_end(self, top: bool) -> bool:
        stamp = self._stamp_top if top else self._stamp_btm
        return stamp >= self._table_len()


@dataclass
class _SequenceState:
    interval: object
    up_partial: float
    lo_partial: float
    up_missing: int
    lo_missing: int
    upper: float = float("inf")
    lower: float = float("-inf")
    decided_in: bool = False
    decided_out: bool = False


class ReferenceRVAQ:
    """The original Algorithm 4 loop (full per-pair refresh + re-sort)."""

    def __init__(
        self,
        repository: VideoRepository,
        scoring: ScoringScheme | None = None,
        config: RankingConfig | None = None,
        *,
        enable_skip: bool = True,
    ) -> None:
        self._repo = repository
        self._scoring = scoring or PaperScoring()
        self._config = config or RankingConfig()
        self._enable_skip = enable_skip

    @staticmethod
    def _split_labels(query: Query) -> tuple[str, list[str]]:
        if not query.actions:
            raise QueryError("RVAQ expects at least one action predicate")
        primary, *extra = query.actions
        return primary, [*extra, *query.objects, *query.relationships]

    def result_sequences(self, query: Query) -> IntervalSet:
        primary, others = self._split_labels(query)
        sets = [self._repo.sequences(primary)]
        sets.extend(self._repo.sequences(label) for label in others)
        return intersect_all(sets)

    def top_k(self, query: Query, k: int | None = None) -> TopKResult:
        if k is None:
            k = self._config.default_k
        if k <= 0:
            raise QueryError(f"k must be positive; got {k}")
        scoring = self._scoring
        p_q = self.result_sequences(query)
        stats = AccessStats()
        if not p_q:
            return TopKResult(query=query, ranked=(), stats=stats, p_q=p_q)

        states = [
            _SequenceState(
                interval=iv,
                up_partial=scoring.identity,
                lo_partial=scoring.identity,
                up_missing=len(iv),
                lo_missing=len(iv),
            )
            for iv in p_q
        ]
        starts = [st.interval.start for st in states]

        skip: set[int] = set(
            self._repo.all_clips().difference(p_q).points()
        )
        primary, others = self._split_labels(query)
        iterator = ReferenceTBClipIterator(
            action_table=self._repo.table(primary),
            object_tables=[self._repo.table(label) for label in others],
            scoring=scoring,
            skip=skip,
            stats=stats,
            need_bottom=len(states) > k,
        )

        iterations = 0
        while True:
            c_top, s_top, c_btm, s_btm = iterator.next_pair()
            iterations += 1
            if c_top is None and c_btm is None and iterator.exhausted:
                break
            if c_top is not None:
                self._fold_top(states, starts, c_top, s_top)
            if c_btm is not None:
                self._fold_bottom(states, starts, c_btm, s_btm)
            self._refresh_bounds(states, s_top, s_btm, c_top, c_btm)
            if self._apply_decisions(states, skip, k):
                break

        ranked = sorted(
            states, key=lambda st: (st.lower, st.upper), reverse=True
        )[:k]
        return TopKResult(
            query=query,
            ranked=tuple(
                RankedSequence(
                    interval=st.interval,
                    lower_bound=st.lower,
                    upper_bound=st.upper,
                )
                for st in ranked
            ),
            stats=stats,
            p_q=p_q,
            iterations=iterations,
        )

    @staticmethod
    def _locate(
        starts: list[int], states: list[Any], cid: int
    ) -> int | None:
        pos = bisect_right(starts, cid) - 1
        if pos >= 0 and cid in states[pos].interval:
            return pos
        return None

    def _fold_top(
        self, states: list[Any], starts: list[int], cid: int, score: float
    ) -> None:
        pos = self._locate(starts, states, cid)
        if pos is None:
            return
        st = states[pos]
        st.up_partial = self._scoring.combine(st.up_partial, score)
        st.up_missing -= 1

    def _fold_bottom(
        self, states: list[Any], starts: list[int], cid: int, score: float
    ) -> None:
        pos = self._locate(starts, states, cid)
        if pos is None:
            return
        st = states[pos]
        st.lo_partial = self._scoring.combine(st.lo_partial, score)
        st.lo_missing -= 1

    def _refresh_bounds(
        self,
        states: list[Any],
        s_top: float | None,
        s_btm: float | None,
        c_top: int | None,
        c_btm: int | None,
    ) -> None:
        for st in states:
            if st.decided_in or st.decided_out:
                continue
            if c_top is not None:
                st.upper = self._scoring.combine(
                    self._scoring.repeat(s_top, st.up_missing), st.up_partial
                )
            if st.up_missing == 0:
                st.upper = st.up_partial
            lower = max(st.up_partial, st.lo_partial)
            if c_btm is not None:
                lower = max(
                    lower,
                    self._scoring.combine(
                        self._scoring.repeat(s_btm, st.lo_missing),
                        st.lo_partial,
                    ),
                )
            if st.lo_missing == 0:
                lower = max(lower, st.lo_partial)
            if st.up_missing == 0:
                lower = st.upper
            st.lower = max(st.lower, lower)

    def _apply_decisions(
        self, states: list[Any], skip: set[int], k: int
    ) -> bool:
        order = sorted(range(len(states)), key=lambda i: states[i].lower, reverse=True)
        top_set = set(order[:k])
        b_lo_k = (
            states[order[k - 1]].lower if len(order) >= k else float("-inf")
        )
        rest = order[k:]
        b_up_not_k = max(
            (states[i].upper for i in rest), default=float("-inf")
        )

        if self._enable_skip:
            for i, st in enumerate(states):
                if st.decided_in or st.decided_out:
                    continue
                if st.upper < b_lo_k:
                    st.decided_out = True
                    skip.update(iter(st.interval))
                elif (
                    rest
                    and i in top_set
                    and st.lower > b_up_not_k
                    and not self._config.require_exact_scores
                ):
                    st.decided_in = True
                    skip.update(iter(st.interval))

        if len(states) <= k:
            return all(st.lower == st.upper for st in states)
        if b_lo_k < b_up_not_k:
            return False
        if self._config.require_exact_scores:
            return all(states[i].lower == states[i].upper for i in top_set)
        return True
