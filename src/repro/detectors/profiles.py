"""Calibrated noise profiles for the paper's model line-up.

Absolute accuracies of the real models depend on dataset and operating
point; what the paper's experiments rely on is the *ordering* and rough
gaps — Mask R-CNN more accurate than YOLOv3 (Table 4), "person" detected
much more reliably than small objects like faucets (Table 3), I3D solid on
Kinetics categories, and an Ideal model matching ground truth exactly.  The
numbers below are calibrated so the end-to-end F1 bands land where §5.2
reports them; they are plain data and easy to re-tune.

Inference costs (``ms_per_unit``) approximate published single-GPU
latencies and only feed the runtime-decomposition experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LabelAccuracy:
    """Per-label operating characteristics of a detector at its default
    threshold.

    ``tpr`` applies near ground-truth episode boundaries (the first/last
    ``edge_units`` occurrence units of an episode, where targets are
    entering or leaving view and real models are least reliable);
    ``interior_tpr`` applies deep inside an episode and defaults to ``tpr``.
    ``fpr`` applies outside episodes.  ``burst_on`` / ``burst_off`` are the
    mean lengths of firing runs inside / outside episodes, controlling the
    temporal correlation of errors.
    """

    tpr: float
    fpr: float
    burst_on: float = 8.0
    burst_off: float = 6.0
    interior_tpr: float | None = None
    edge_units: int = 0

    def __post_init__(self) -> None:
        checks = [("tpr", self.tpr), ("fpr", self.fpr)]
        if self.interior_tpr is not None:
            checks.append(("interior_tpr", self.interior_tpr))
        for name, value in checks:
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]; got {value}")
        if self.burst_on <= 0 or self.burst_off <= 0:
            raise ConfigurationError("burst lengths must be positive")
        if self.edge_units < 0:
            raise ConfigurationError("edge_units must be >= 0")

    @property
    def effective_interior_tpr(self) -> float:
        return self.tpr if self.interior_tpr is None else self.interior_tpr


@dataclass(frozen=True)
class DetectorProfile:
    """Full noise profile of one simulated model."""

    name: str
    kind: str  # "object" | "action" | "tracker"
    default: LabelAccuracy
    overrides: Mapping[str, LabelAccuracy] = field(default_factory=dict)
    threshold: float = 0.5
    score_sharpness: float = 5.0
    ms_per_unit: float = 25.0

    def __post_init__(self) -> None:
        if self.kind not in ("object", "action", "tracker"):
            raise ConfigurationError(f"unknown profile kind {self.kind!r}")
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError("threshold must be in (0, 1)")
        if self.score_sharpness <= 0:
            raise ConfigurationError("score_sharpness must be positive")
        if self.ms_per_unit < 0:
            raise ConfigurationError("ms_per_unit must be >= 0")

    def accuracy_for(self, label: str) -> LabelAccuracy:
        """Operating characteristics for one label (override or default)."""
        return self.overrides.get(label, self.default)

    def with_overrides(self, overrides: Mapping[str, LabelAccuracy]) -> "DetectorProfile":
        merged = dict(self.overrides)
        merged.update(overrides)
        return DetectorProfile(
            name=self.name,
            kind=self.kind,
            default=self.default,
            overrides=merged,
            threshold=self.threshold,
            score_sharpness=self.score_sharpness,
            ms_per_unit=self.ms_per_unit,
        )


#: "person" is by far the best-detected COCO class; the Table 3 experiments
#: rely on a high-accuracy correlated predicate lifting composite F1.
_PERSON = LabelAccuracy(
    tpr=0.94, fpr=0.008, burst_on=20.0, burst_off=2.0,
    interior_tpr=0.995, edge_units=10,
)

MASK_RCNN = DetectorProfile(
    name="MaskRCNN",
    kind="object",
    default=LabelAccuracy(
        tpr=0.82, fpr=0.030, burst_on=12.0, burst_off=2.5,
        interior_tpr=0.985, edge_units=15,
    ),
    overrides={"person": _PERSON},
    score_sharpness=6.0,
    ms_per_unit=90.0,  # two-stage detector, ~11 fps on a single GPU
)

YOLOV3 = DetectorProfile(
    name="YOLOv3",
    kind="object",
    default=LabelAccuracy(
        tpr=0.74, fpr=0.055, burst_on=10.0, burst_off=3.0,
        interior_tpr=0.93, edge_units=18,
    ),
    overrides={
        "person": LabelAccuracy(
            tpr=0.90, fpr=0.015, burst_on=18.0, burst_off=2.0,
            interior_tpr=0.99, edge_units=12,
        )
    },
    score_sharpness=4.0,
    ms_per_unit=19.0,  # one-stage detector, ~50 fps
)

I3D = DetectorProfile(
    name="I3D",
    kind="action",
    default=LabelAccuracy(
        tpr=0.70, fpr=0.020, burst_on=6.0, burst_off=1.5,
        interior_tpr=0.995, edge_units=2,
    ),
    score_sharpness=5.0,
    ms_per_unit=140.0,  # per shot (two-stream 3D ConvNet)
)

CENTERTRACK = DetectorProfile(
    name="CenterTrack",
    kind="tracker",
    default=LabelAccuracy(tpr=0.92, fpr=0.015, burst_on=15.0, burst_off=4.0),
    overrides={"person": LabelAccuracy(tpr=0.97, fpr=0.006, burst_on=25.0, burst_off=3.0)},
    score_sharpness=6.0,
    ms_per_unit=25.0,
)

#: Ideal models replicate ground truth exactly (Table 4's sanity rows).
IDEAL_OBJECT = DetectorProfile(
    name="IdealObject",
    kind="object",
    default=LabelAccuracy(tpr=1.0, fpr=0.0, burst_on=1.0, burst_off=1.0),
    score_sharpness=50.0,
    ms_per_unit=0.0,
)

IDEAL_ACTION = DetectorProfile(
    name="IdealAction",
    kind="action",
    default=LabelAccuracy(tpr=1.0, fpr=0.0, burst_on=1.0, burst_off=1.0),
    score_sharpness=50.0,
    ms_per_unit=0.0,
)

IDEAL_TRACKER = DetectorProfile(
    name="IdealTracker",
    kind="tracker",
    default=LabelAccuracy(tpr=1.0, fpr=0.0, burst_on=1.0, burst_off=1.0),
    score_sharpness=50.0,
    ms_per_unit=0.0,
)

ALL_PROFILES: tuple[DetectorProfile, ...] = (
    MASK_RCNN,
    YOLOV3,
    I3D,
    CENTERTRACK,
    IDEAL_OBJECT,
    IDEAL_ACTION,
    IDEAL_TRACKER,
)
