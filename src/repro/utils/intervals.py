"""Inclusive integer interval algebra over clip (or frame) identifiers.

The paper represents every sequence — query results (Eq. 4), per-label
individual sequences (§4.2), and ground-truth annotations — as pairs
``(c_l, c_r)`` of *inclusive* start/end identifiers.  This module provides
that representation plus the operations the algorithms need:

* :func:`merge_positive` — Eq. 4: merge runs of positive clips into result
  sequences.
* :meth:`IntervalSet.intersect` — the paper's ``⊗`` operator (Eq. 12),
  implemented as an O(n + m) sweep over sorted interval endpoints.
* :meth:`IntervalSet.iou` — intersection-over-union between interval sets,
  the basis of the sequence-level F1 metric (§5.1).

All sets are kept *normalised*: sorted by start, pairwise disjoint, and with
no two intervals adjacent (``end + 1 == next.start`` is merged), so equality
of interval sets is structural equality.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import IntervalError


@dataclass(frozen=True, order=True)
class Interval:
    """A non-empty inclusive integer interval ``[start, end]``.

    ``Interval(3, 5)`` covers the identifiers ``{3, 4, 5}``.  Instances are
    immutable, hashable and ordered lexicographically by ``(start, end)``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise IntervalError(
                f"interval end {self.end} precedes start {self.start}"
            )

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, point: int) -> bool:
        return self.start <= point <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one identifier."""
        return self.start <= other.end and other.start <= self.end

    def adjacent(self, other: "Interval") -> bool:
        """True if the intervals touch end-to-end without overlapping."""
        return self.end + 1 == other.start or other.end + 1 == self.start

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping part of two intervals, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return None
        return Interval(start, end)

    def iou(self, other: "Interval") -> float:
        """Intersection-over-union of two intervals, counted in identifiers."""
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        union = len(self) + len(other) - len(inter)
        return len(inter) / union

    def shift(self, offset: int) -> "Interval":
        """The interval translated by ``offset`` identifiers."""
        return Interval(self.start + offset, self.end + offset)

    def as_tuple(self) -> tuple[int, int]:
        return (self.start, self.end)


class IntervalSet:
    """A normalised set of disjoint, non-adjacent :class:`Interval` objects.

    The constructor accepts intervals in any order, possibly overlapping or
    adjacent; they are merged into canonical form.  The class behaves like a
    read-only sequence of intervals and supports set algebra.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval | tuple[int, int]] = ()) -> None:
        parsed = [
            iv if isinstance(iv, Interval) else Interval(iv[0], iv[1])
            for iv in intervals
        ]
        self._intervals: tuple[Interval, ...] = tuple(_normalise(parsed))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_indicator(cls, flags: Sequence[bool | int], offset: int = 0) -> "IntervalSet":
        """Merge runs of truthy flags into intervals (Eq. 4).

        ``flags[i]`` refers to identifier ``offset + i``.  This is how
        positive clips are merged into result sequences.
        """
        intervals: list[Interval] = []
        run_start: int | None = None
        for i, flag in enumerate(flags):
            if flag and run_start is None:
                run_start = i
            elif not flag and run_start is not None:
                intervals.append(Interval(offset + run_start, offset + i - 1))
                run_start = None
        if run_start is not None:
            intervals.append(Interval(offset + run_start, offset + len(flags) - 1))
        return cls(intervals)

    @classmethod
    def from_points(cls, points: Iterable[int]) -> "IntervalSet":
        """Build the set covering exactly the given identifiers."""
        ordered = sorted(set(points))
        intervals: list[Interval] = []
        for point in ordered:
            if intervals and intervals[-1].end + 1 == point:
                intervals[-1] = Interval(intervals[-1].start, point)
            else:
                intervals.append(Interval(point, point))
        return cls(intervals)

    @classmethod
    def single(cls, start: int, end: int) -> "IntervalSet":
        return cls([Interval(start, end)])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls()

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __getitem__(self, index: int) -> Interval:
        return self._intervals[index]

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{iv.start},{iv.end}]" for iv in self._intervals)
        return f"IntervalSet({inner})"

    def __contains__(self, point: int) -> bool:
        """Membership by binary search over sorted disjoint intervals."""
        lo, hi = 0, len(self._intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            iv = self._intervals[mid]
            if point < iv.start:
                hi = mid - 1
            elif point > iv.end:
                lo = mid + 1
            else:
                return True
        return False

    # -- measures ---------------------------------------------------------------

    @property
    def total_length(self) -> int:
        """Number of identifiers covered by the set."""
        return sum(len(iv) for iv in self._intervals)

    def points(self) -> Iterator[int]:
        """All covered identifiers in increasing order."""
        for iv in self._intervals:
            yield from iv

    def as_tuples(self) -> list[tuple[int, int]]:
        return [iv.as_tuple() for iv in self._intervals]

    def bounding(self) -> Interval | None:
        """Smallest single interval containing the whole set."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].start, self._intervals[-1].end)

    # -- set algebra -------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet([*self._intervals, *other._intervals])

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """The paper's ``⊗`` operator (Eq. 12): clips present in both sets.

        A linear two-pointer sweep over the two sorted interval lists; the
        result is re-normalised so runs that touch merge into one sequence.
        """
        result: list[Interval] = []
        i = j = 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            inter = a[i].intersection(b[j])
            if inter is not None:
                result.append(inter)
            if a[i].end < b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Identifiers covered by ``self`` but not by ``other``."""
        result: list[Interval] = []
        other_ivs = list(other._intervals)
        j = 0
        for iv in self._intervals:
            cursor = iv.start
            while j < len(other_ivs) and other_ivs[j].end < iv.start:
                j += 1
            k = j
            while k < len(other_ivs) and other_ivs[k].start <= iv.end:
                cut = other_ivs[k]
                if cut.start > cursor:
                    result.append(Interval(cursor, cut.start - 1))
                cursor = max(cursor, cut.end + 1)
                k += 1
            if cursor <= iv.end:
                result.append(Interval(cursor, iv.end))
        return IntervalSet(result)

    def complement(self, lo: int, hi: int) -> "IntervalSet":
        """Identifiers of ``[lo, hi]`` not covered by the set."""
        return IntervalSet.single(lo, hi).difference(self)

    # -- similarity ---------------------------------------------------------------

    def iou(self, other: "IntervalSet") -> float:
        """Intersection-over-union counted in identifiers across whole sets."""
        inter = self.intersect(other).total_length
        union = self.total_length + other.total_length - inter
        if union == 0:
            return 0.0
        return inter / union

    def clipped(self, lo: int, hi: int) -> "IntervalSet":
        """Restrict the set to ``[lo, hi]``."""
        return self.intersect(IntervalSet.single(lo, hi))


class IntervalSkipSet:
    """A mutable identifier set backed by sorted disjoint intervals.

    RVAQ's skip set ``C_skip`` (§4.3) covers nearly the whole repository —
    every clip outside ``P_q`` plus every clip of each decided sequence —
    so materialising it as a point :class:`set` costs O(total clips) memory
    and setup time.  This structure keeps the interval representation
    instead: membership is a binary search (O(log n) in the number of
    runs), and growth splices one interval into the sorted run list
    (merging overlapping/adjacent neighbours) rather than inserting its
    points one by one.

    Only the operations the skip protocol needs are provided:
    ``in`` (consumed by TBClip), :meth:`add` for whole intervals (how RVAQ
    retires decided sequences), and :meth:`update` for point iterables
    (drop-in compatibility with ``set.update``).
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, base: Iterable[Interval | tuple[int, int]] = ()) -> None:
        base_set = base if isinstance(base, IntervalSet) else IntervalSet(base)
        self._starts: list[int] = [iv.start for iv in base_set]
        self._ends: list[int] = [iv.end for iv in base_set]

    def __contains__(self, point: int) -> bool:
        pos = bisect_right(self._starts, point) - 1
        return pos >= 0 and point <= self._ends[pos]

    def __len__(self) -> int:
        """Number of covered identifiers (set semantics, not run count)."""
        return sum(e - s + 1 for s, e in zip(self._starts, self._ends))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{s},{e}]" for s, e in zip(self._starts, self._ends)
        )
        return f"IntervalSkipSet({inner})"

    def add(self, interval: Interval) -> None:
        """Insert one interval, merging overlapping or adjacent runs."""
        lo = bisect_left(self._starts, interval.start)
        first = lo
        if first > 0 and self._ends[first - 1] >= interval.start - 1:
            first -= 1
        last = lo
        while last < len(self._starts) and self._starts[last] <= interval.end + 1:
            last += 1
        if first == last:
            self._starts.insert(first, interval.start)
            self._ends.insert(first, interval.end)
            return
        merged_start = min(interval.start, self._starts[first])
        merged_end = max(interval.end, self._ends[last - 1])
        self._starts[first:last] = [merged_start]
        self._ends[first:last] = [merged_end]

    def update(self, points: Iterable[int]) -> None:
        """Point-wise growth; consecutive runs collapse into intervals."""
        run_start: int | None = None
        run_end = 0
        for point in sorted(points):
            if run_start is None:
                run_start, run_end = point, point
            elif point == run_end or point == run_end + 1:
                run_end = point
            else:
                self.add(Interval(run_start, run_end))
                run_start, run_end = point, point
        if run_start is not None:
            self.add(Interval(run_start, run_end))

    def to_interval_set(self) -> IntervalSet:
        return IntervalSet(
            Interval(s, e) for s, e in zip(self._starts, self._ends)
        )


def _normalise(intervals: list[Interval]) -> list[Interval]:
    """Sort, then merge overlapping or adjacent intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if iv.start <= last.end + 1:
            if iv.end > last.end:
                merged[-1] = Interval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged


def merge_positive(flags: Sequence[bool | int], offset: int = 0) -> IntervalSet:
    """Module-level alias of :meth:`IntervalSet.from_indicator` (Eq. 4)."""
    return IntervalSet.from_indicator(flags, offset=offset)


def intersect_all(sets: Sequence[IntervalSet]) -> IntervalSet:
    """``P_a ⊗ P_o1 ⊗ … ⊗ P_oI`` (Eq. 12) over any number of operands.

    Intersecting the two smallest operands first keeps intermediate results
    small; with the typical handful of query predicates the difference is
    minor but free to take.
    """
    if not sets:
        raise IntervalError("intersect_all needs at least one interval set")
    remaining = sorted(sets, key=lambda s: s.total_length)
    result = remaining[0]
    for other in remaining[1:]:
        if not result:
            return IntervalSet.empty()
        result = result.intersect(other)
    return result
