"""Scatter-gather distributed top-K over a sharded repository.

Each shard runs an *exact-score* RVAQ (:class:`ShardSearch`, a steppable
subclass of :class:`~repro.core.rvaq.RVAQ`) over its own clip tables.
Between fixed-budget rounds every shard reports a **frontier summary** —
its best K proven lower bounds and the highest upper bound of its still
undecided sequences — to a coordinator (:class:`GlobalFrontier`) that
composes them into a global threshold-algorithm stop condition:

* the coordinator's **floor** is the K-th largest of the union of all
  reported lower bounds.  Lower bounds never exceed true sequence scores,
  and a k-th order statistic over a superset dominates the one over any
  subset, so the floor is always a proven lower bound on the global K-th
  answer score;
* the floor feeds back into each shard's next round, where RVAQ's
  decision step retires any sequence whose upper bound falls *strictly*
  below it (see ``_apply_decisions`` in :mod:`repro.core.rvaq`).  A shard
  whose whole upper frontier sinks under the floor therefore halts early
  — the global K best provably live elsewhere — without ever discarding
  a sequence that could still reach rank K (ties survive the strict
  comparison).

Workers run in exact-score mode so every surviving candidate carries its
true score; the gather step then reproduces the single-repository
engine's deterministic ranking by sorting on ``(-score, global video
ingestion order, local start)`` — precisely the stable slot order RVAQ's
final sort falls back to on score ties.  The round/barrier schedule is
identical across the serial, thread and process executors, so per-shard
access accounting is too.

The process executor ships shard *paths* (when the repository has been
saved) and each worker opens its shard through the format-3 memory-mapped
column layout: O(1) open, and all workers share the arena's pages through
the OS page cache instead of materialising private copies.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter
from typing import Literal, Sequence

import numpy as np

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.rvaq import RVAQ, _BoundColumns
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.core.tbclip import TBClipIterator
from repro.detectors.cost import CostMeter
from repro.errors import ConfigurationError, QueryError
from repro.storage.access import AccessStats
from repro.storage.repository import VideoRepository
from repro.storage.sharded import ShardedRepository
from repro.utils.intervals import IntervalSkipSet
from repro.utils.validation import require_positive_int

DistributedExecutor = Literal["serial", "thread", "process"]

#: TBClip pairs each shard processes between coordinator barriers.  Large
#: enough to amortise the round-trip, small enough that a freshly grown
#: floor reaches the shards while early stopping still has leverage.
DEFAULT_ROUND_BUDGET = 256


@dataclass(frozen=True)
class ShardFrontier:
    """One shard's per-round bound summary, streamed to the coordinator."""

    shard: int
    #: This shard's best lower bounds, descending, at most K of them.
    top_lowers: tuple[float, ...]
    #: Highest upper bound among still-undecided sequences (``-inf`` when
    #: none remain) — the coordinator halts the shard once the global
    #: floor strictly dominates this.
    max_live_upper: float
    n_live: int
    done: bool
    iterations: int


@dataclass(frozen=True)
class ShardCandidate:
    """An exact-score answer candidate, already localised to its video."""

    video_id: str
    start: int
    end: int
    score: float

    @property
    def row(self) -> tuple[str, int, int, float]:
        return (self.video_id, self.start, self.end, self.score)


@dataclass(frozen=True)
class ShardReport:
    """A finished shard's contribution to the gather step."""

    shard: int
    candidates: tuple[ShardCandidate, ...]
    stats: AccessStats
    iterations: int
    rounds: int
    wall_s: float


@dataclass(frozen=True)
class DistributedTopKResult:
    """Output of one scatter-gather execution.

    ``rows`` is already localised — ``(video_id, start_clip, end_clip,
    score)`` in rank order, the same rows
    :meth:`repro.core.engine.OfflineEngine.localized` renders for a
    single-repository result.
    """

    query: Query
    k: int
    rows: tuple[tuple[str, int, int, float], ...]
    stats: AccessStats
    meter: CostMeter
    per_shard: tuple[ShardReport, ...]
    rounds: int

    @property
    def iterations(self) -> int:
        return sum(report.iterations for report in self.per_shard)


class ShardSearch(RVAQ):
    """A steppable exact-score RVAQ over one shard.

    Same bound maintenance, decision frontier and skip protocol as the
    parent — :meth:`step` simply runs the Algorithm-4 loop for a bounded
    number of TBClip pairs with the coordinator's floor folded into the
    decision step, then reports the bound frontier instead of looping to
    completion.
    """

    def __init__(
        self,
        repository: VideoRepository,
        query: Query,
        k: int,
        scoring: ScoringScheme | None = None,
        config: RankingConfig | None = None,
        shard: int = 0,
    ) -> None:
        # Exact scores are what make the gather step well-defined: every
        # candidate crossing the wire carries its true score, so the
        # coordinator never has to re-open a shard to break a tie.
        config = replace(config or RankingConfig(), require_exact_scores=True)
        super().__init__(repository, scoring or PaperScoring(), config)
        if k <= 0:
            raise QueryError(f"k must be positive; got {k}")
        self.shard = shard
        self._k = k
        self._stats = AccessStats()
        self._iterations = 0
        self._rounds = 0
        self._wall_s = 0.0
        self._done = False
        p_q = self.result_sequences(query)
        if not p_q:
            self._cols: _BoundColumns | None = None
            self._iterator: TBClipIterator | None = None
            self._done = True
            return
        self._cols = _BoundColumns(p_q, self._scoring.identity)
        outside = repository.all_clips().difference(p_q)
        self._skip = IntervalSkipSet(outside)
        primary, others = self._split_labels(query)
        self._iterator = TBClipIterator(
            action_table=repository.table(primary),
            object_tables=[repository.table(label) for label in others],
            scoring=self._scoring,
            skip=self._skip,
            stats=self._stats,
            need_bottom=len(self._cols) > k,
        )

    @property
    def done(self) -> bool:
        return self._done

    def frontier(self) -> ShardFrontier:
        """The current bound summary (cheap; no table access)."""
        cols = self._cols
        if cols is None or len(cols) == 0:
            return ShardFrontier(
                shard=self.shard,
                top_lowers=(),
                max_live_upper=float("-inf"),
                n_live=0,
                done=self._done,
                iterations=self._iterations,
            )
        # Frozen (decided) slots keep valid lower bounds, so the whole
        # column participates; the coordinator's k-th statistic only
        # tightens with more entries.
        top = np.sort(cols.lower)[::-1][: self._k]
        live = cols.live
        max_live_upper = (
            float(cols.upper[live].max()) if live.any() else float("-inf")
        )
        return ShardFrontier(
            shard=self.shard,
            top_lowers=tuple(float(v) for v in top),
            max_live_upper=max_live_upper,
            n_live=int(live.sum()),
            done=self._done,
            iterations=self._iterations,
        )

    def step(self, budget: int, floor: float) -> ShardFrontier:
        """Process up to ``budget`` TBClip pairs under the global floor."""
        require_positive_int(budget, "budget")
        if self._done:
            return self.frontier()
        start_s = perf_counter()
        cols = self._cols
        iterator = self._iterator
        assert cols is not None and iterator is not None
        batch = self._config.tbclip_batch
        spent = 0
        while spent < budget:
            pairs, exhausted = iterator.next_batch(min(batch, budget - spent))
            last = len(pairs) - 1
            for idx, (c_top, s_top, c_btm, s_btm) in enumerate(pairs):
                self._iterations += 1
                spent += 1
                if exhausted and idx == last:
                    # Every clip of P_q processed: all bounds exact.
                    self._done = True
                    break
                if c_top is not None:
                    self._fold_top(cols, c_top, s_top)
                if c_btm is not None:
                    self._fold_bottom(cols, c_btm, s_btm)
                self._refresh_bounds(cols, s_top, s_btm, c_top, c_btm)
                if self._apply_decisions(cols, self._skip, self._k, floor):
                    self._done = True
                    break
                live = cols.live
                if not live.any():
                    # Everything decided — either locally dominated or
                    # retired by the coordinator's floor.
                    self._done = True
                    break
                if bool((cols.lower[live] == cols.upper[live]).all()):
                    # Every undecided sequence already has its exact
                    # score; no further table access can change the
                    # candidate set this shard can contribute.
                    self._done = True
                    break
            if self._done:
                break
        self._rounds += 1
        self._wall_s += perf_counter() - start_s
        return self.frontier()

    def finish(self) -> ShardReport:
        """Localise the surviving exact-score candidates and report."""
        if not self._done:
            raise QueryError("shard search has not converged; keep stepping")
        candidates: list[ShardCandidate] = []
        cols = self._cols
        if cols is not None and len(cols):
            live = cols.live
            exact = live & (cols.lower == cols.upper)
            for i in np.flatnonzero(exact):
                interval = cols.intervals[i]
                video_id, start = self._repo.to_local(interval.start)
                _, end = self._repo.to_local(interval.end)
                candidates.append(
                    ShardCandidate(
                        video_id=video_id,
                        start=start,
                        end=end,
                        score=float(cols.lower[i]),
                    )
                )
        # Slot order within a shard is ascending global-cid order, which
        # localises to (video ingestion order, local start) — already the
        # gather tie-break — so the best K candidates are the first K in
        # a stable sort on score alone.
        candidates.sort(key=lambda c: -c.score)
        return ShardReport(
            shard=self.shard,
            candidates=tuple(candidates[: self._k]),
            stats=self._stats,
            iterations=self._iterations,
            rounds=self._rounds,
            wall_s=self._wall_s,
        )


class GlobalFrontier:
    """The coordinator's composed bound state across all shards."""

    def __init__(self, n_shards: int, k: int) -> None:
        self._lowers: list[tuple[float, ...]] = [() for _ in range(n_shards)]
        self._k = k

    def observe(self, frontier: ShardFrontier) -> None:
        self._lowers[frontier.shard] = frontier.top_lowers

    @property
    def floor(self) -> float:
        """K-th largest of every reported lower bound (``-inf`` until K
        bounds exist) — a proven lower bound on the global K-th score."""
        merged = sorted(
            (v for lowers in self._lowers for v in lowers), reverse=True
        )
        if len(merged) < self._k:
            return float("-inf")
        return merged[self._k - 1]


def _gather(
    sharded: ShardedRepository,
    query: Query,
    k: int,
    reports: Sequence[ShardReport],
    rounds: int,
) -> DistributedTopKResult:
    """Merge per-shard candidates and accounting into the global answer."""
    order = sharded.global_order()
    candidates = [c for report in reports for c in report.candidates]
    # Exactly the single-repository ranking: score descending, ties by the
    # stable slot order of the merged P_q — global video ingestion order,
    # then local start.
    candidates.sort(key=lambda c: (-c.score, order[c.video_id], c.start))
    stats = AccessStats()
    meter = CostMeter()
    for report in reports:
        stats = stats.merged_with(report.stats)
        shard_meter = CostMeter()
        shard_meter.record_stage(f"shard-{report.shard:03d}", report.wall_s)
        meter.merge(shard_meter)
    return DistributedTopKResult(
        query=query,
        k=k,
        rows=tuple(c.row for c in candidates[:k]),
        stats=stats,
        meter=meter,
        per_shard=tuple(sorted(reports, key=lambda r: r.shard)),
        rounds=rounds,
    )


# -- executors -----------------------------------------------------------------------


def _run_serial(
    searches: Sequence[ShardSearch], frontier: GlobalFrontier, budget: int
) -> tuple[list[ShardReport], int]:
    rounds = 0
    while any(not search.done for search in searches):
        # Barrier semantics: every shard steps under the floor composed at
        # the *previous* round's end, exactly as the parallel executors
        # do, so accounting is executor-invariant.
        floor = frontier.floor
        for search in searches:
            if not search.done:
                frontier.observe(search.step(budget, floor))
        rounds += 1
    return [search.finish() for search in searches], rounds


def _run_thread(
    searches: Sequence[ShardSearch],
    frontier: GlobalFrontier,
    budget: int,
    max_workers: int | None,
) -> tuple[list[ShardReport], int]:
    from concurrent.futures import ThreadPoolExecutor

    rounds = 0
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        while any(not search.done for search in searches):
            floor = frontier.floor
            futures = [
                pool.submit(search.step, budget, floor)
                for search in searches
                if not search.done
            ]
            for future in futures:
                frontier.observe(future.result())
            rounds += 1
    return [search.finish() for search in searches], rounds


def _shard_worker(
    conn: multiprocessing.connection.Connection,
    source: "Path | VideoRepository",
    query: Query,
    k: int,
    scoring: ScoringScheme | None,
    config: RankingConfig | None,
    shard: int,
) -> None:
    """Process-executor worker: open the shard, answer step/finish calls.

    When ``source`` is a path the shard opens through the format-3 memmap
    layout — O(1), and its column pages are shared with every sibling
    worker through the OS page cache.
    """
    try:
        repository = (
            VideoRepository.load(source)
            if isinstance(source, Path)
            else source
        )
        search = ShardSearch(repository, query, k, scoring, config, shard)
        while True:
            message = conn.recv()
            if message[0] == "step":
                conn.send(search.step(message[1], message[2]))
            elif message[0] == "frontier":
                conn.send(search.frontier())
            elif message[0] == "finish":
                conn.send(search.finish())
                return
            else:  # pragma: no cover - protocol guard
                raise ConfigurationError(f"unknown command {message[0]!r}")
    except BaseException as exc:  # surface worker faults to the coordinator
        try:
            conn.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):  # reprolint: disable=RL004 - coordinator is gone; the re-raise below still surfaces the fault in the worker's exit code
            pass
        raise
    finally:
        conn.close()


def _receive(conn: multiprocessing.connection.Connection) -> object:
    payload = conn.recv()
    if isinstance(payload, tuple) and payload and payload[0] == "error":
        raise QueryError(f"shard worker failed: {payload[1]}")
    return payload


def _run_process(
    sharded: ShardedRepository,
    query: Query,
    k: int,
    scoring: ScoringScheme | None,
    config: RankingConfig | None,
    frontier: GlobalFrontier,
    budget: int,
) -> tuple[list[ShardReport], int]:
    # Prefer fork (cheap, inherits in-memory shards when unsaved); spawn
    # remains correct because every message crossing the pipe is a small
    # picklable dataclass and unsaved shards pickle whole.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    sources: list[Path | VideoRepository]
    if sharded.path is not None:
        sources = list(ShardedRepository.shard_paths(sharded.path))
    else:
        sources = list(sharded.shards)
    workers: list[
        tuple[multiprocessing.connection.Connection, multiprocessing.process.BaseProcess]
    ] = []
    try:
        for shard, source in enumerate(sources):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker,
                args=(child_conn, source, query, k, scoring, config, shard),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((parent_conn, process))
        active = set(range(len(workers)))
        rounds = 0
        while active:
            floor = frontier.floor
            for shard in sorted(active):
                workers[shard][0].send(("step", budget, floor))
            finished: list[int] = []
            for shard in sorted(active):
                summary = _receive(workers[shard][0])
                assert isinstance(summary, ShardFrontier)
                frontier.observe(summary)
                if summary.done:
                    finished.append(shard)
            active.difference_update(finished)
            rounds += 1
        reports: list[ShardReport] = []
        for conn, _ in workers:
            conn.send(("finish",))
            report = _receive(conn)
            assert isinstance(report, ShardReport)
            reports.append(report)
        return reports, rounds
    finally:
        for conn, process in workers:
            conn.close()
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker guard
                process.terminate()
                process.join(timeout=5)


def sharded_top_k(
    sharded: ShardedRepository,
    query: Query,
    k: int,
    scoring: ScoringScheme | None = None,
    config: RankingConfig | None = None,
    *,
    executor: DistributedExecutor = "serial",
    round_budget: int = DEFAULT_ROUND_BUDGET,
    max_workers: int | None = None,
) -> DistributedTopKResult:
    """Scatter-gather top-K over a sharded repository.

    Result rows are identical to running exact-score RVAQ over the merged
    single repository, for every executor and shard count; per-shard
    access/cost accounting is merged into ``stats`` / ``meter``.
    """
    require_positive_int(k, "k")
    require_positive_int(round_budget, "round_budget")
    frontier = GlobalFrontier(sharded.n_shards, k)
    if executor == "process":
        reports, rounds = _run_process(
            sharded, query, k, scoring, config, frontier, round_budget
        )
        return _gather(sharded, query, k, reports, rounds)
    searches = [
        ShardSearch(shard_repo, query, k, scoring, config, shard)
        for shard, shard_repo in enumerate(sharded.shards)
    ]
    if executor == "serial":
        reports, rounds = _run_serial(searches, frontier, round_budget)
    elif executor == "thread":
        reports, rounds = _run_thread(
            searches, frontier, round_budget, max_workers
        )
    else:
        raise ConfigurationError(f"unknown executor {executor!r}")
    return _gather(sharded, query, k, reports, rounds)
