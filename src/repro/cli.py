"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    Build a small synthetic scene and run a streaming query on it.
``query "<sql>" --movie <title> [--scale S] [--k-override K]``
    Parse a query in the paper's SQL dialect and execute it against a
    synthesized Table-2 movie: MERGE-only queries stream online;
    ``ORDER BY RANK ... LIMIT K`` queries ingest the movie and run RVAQ.
``experiment <name> [--scale S] [--seed N]``
    Run one table/figure driver from :mod:`repro.eval.experiments` and
    print the rendered rows.
``repo shard <src> <out> --shards N`` / ``repo info <dir> [--json]``
    Split a saved repository into N format-3 shard directories, or
    describe a saved (single or sharded) repository from its manifests.
``topk <dir> --action A [--objects O ...] [--k K] [--shards N]``
    Answer a top-K query over a saved repository; sharded stores (or
    ``--shards N``) run the scatter-gather distributed engine with
    ``--executor serial|thread|process`` and merged ``--stats``.
``list``
    List available experiments and datasets.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Sequence

from repro import __version__

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.context import ExecutionStats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="svq-act: querying for actions over videos (reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run a small streaming-query demo")

    query = sub.add_parser("query", help="execute a SQL-dialect query")
    query.add_argument("sql", help="query text in the paper's dialect")
    query.add_argument(
        "--movie", default="Coffee and Cigarettes",
        help="Table-2 movie to synthesize and query",
    )
    query.add_argument("--scale", type=float, default=0.1)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--predicate-order", default="user",
        choices=["user", "selective", "cost"],
        help="conjunct evaluation order for online runs: the query's own "
             "order, probe-learned ascending selectivity, or full "
             "cost-based ranking (expected cost to falsify, from measured "
             "per-model unit costs)",
    )
    query.add_argument(
        "--stats", action="store_true",
        help="print per-stage execution counters after an online run",
    )
    query.add_argument(
        "--stats-json", action="store_true",
        help="print the execution counters as one JSON object (the same "
             "payload the service health endpoint serves per query)",
    )
    query.add_argument(
        "--fault-profile", default="none",
        help="inject simulated detector faults: none, transient, flaky, "
             "chaos (seeded from --seed, so runs are reproducible)",
    )
    query.add_argument(
        "--retries", type=int, default=1,
        help="max attempts per model invocation (1 = no retries)",
    )
    query.add_argument(
        "--on-failure", default="fail_clip",
        choices=["fail_clip", "skip_predicate", "hold_last_estimate"],
        help="per-predicate degradation policy once retries are exhausted",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", help="driver name, e.g. table6_movie_topk")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    report.add_argument("--out", default="REPORT.md")
    report.add_argument("--scale", type=float, default=0.15)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these driver names",
    )

    serve = sub.add_parser(
        "serve",
        help="run the streaming query service demo: movie streams, live "
             "registration/cancellation, incremental result push",
    )
    serve.add_argument(
        "--movies", nargs="*", default=["Coffee and Cigarettes", "Iron Man"],
        help="Table-2 movies to attach as streams",
    )
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--clip-batch", type=int, default=8,
        help="clips each stream advances per scheduling step",
    )
    serve.add_argument(
        "--cancel-after", type=int, default=None, metavar="CLIPS",
        help="cancel the first stream's query once its stream passes "
             "this many clips (demonstrates mid-stream retirement)",
    )
    serve.add_argument(
        "--snapshot-at", type=int, default=None, metavar="CLIPS",
        help="snapshot the service once the first stream passes this "
             "many clips, then resume the bundle in a fresh service "
             "(demonstrates session migration)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=4,
        help="per-tenant concurrent-query quota",
    )
    serve.add_argument(
        "--unit-budget", type=int, default=None,
        help="per-tenant model-unit budget (default: unmetered)",
    )
    serve.add_argument(
        "--stats-json", action="store_true",
        help="print the service health/metrics payload as JSON at exit",
    )

    repo = sub.add_parser(
        "repo", help="inspect or re-partition saved repositories"
    )
    repo_sub = repo.add_subparsers(dest="repo_command", required=True)
    shard = repo_sub.add_parser(
        "shard",
        help="split a saved repository into N format-3 shard directories",
    )
    shard.add_argument("src", help="saved repository directory")
    shard.add_argument("out", help="target directory for the shard tree")
    shard.add_argument(
        "--shards", type=int, required=True, help="number of shards"
    )
    info = repo_sub.add_parser(
        "info", help="describe a saved repository from its manifests"
    )
    info.add_argument("dir", help="saved repository or shard-tree directory")
    info.add_argument(
        "--json", action="store_true", help="print the description as JSON"
    )

    topk = sub.add_parser(
        "topk", help="answer a top-K query over a saved repository"
    )
    topk.add_argument("dir", help="saved repository or shard-tree directory")
    topk.add_argument("--action", required=True, help="the action predicate")
    topk.add_argument(
        "--objects", nargs="*", default=[], help="object predicates"
    )
    topk.add_argument("--k", type=int, default=5)
    topk.add_argument(
        "--shards", type=int, default=None,
        help="re-partition the store into this many shards before "
             "querying (a saved shard tree is used as-is by default)",
    )
    topk.add_argument(
        "--executor", default="serial",
        choices=["serial", "thread", "process"],
        help="scatter-gather worker executor for sharded stores",
    )
    topk.add_argument(
        "--stats", action="store_true",
        help="print merged access counts and per-shard accounting",
    )
    topk.add_argument(
        "--json", action="store_true",
        help="print rows (and stats) as one JSON object",
    )

    sub.add_parser("list", help="list experiments and datasets")
    return parser


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import OnlineEngine, Query, SceneSpec, TrackSpec, synthesize_video
    from repro.eval.metrics import match_sequences

    video = synthesize_video(
        SceneSpec(
            video_id="demo",
            duration_s=240.0,
            tracks=(
                TrackSpec(label="washing dishes", kind="action",
                          occupancy=0.25, mean_duration_s=20.0),
                TrackSpec(label="faucet", kind="object",
                          correlate_with="washing dishes", correlation=0.9,
                          occupancy=0.05),
            ),
        ),
        seed=7,
    )
    query = Query(objects=["faucet"], action="washing dishes")
    truth = video.truth.query_clips(
        query.objects, query.action, video.meta.geometry
    )
    result = OnlineEngine().run(query, video)
    report = match_sequences(result.sequences, truth)
    print(f"query        : {query.describe()}")
    print(f"ground truth : {truth.as_tuples()}")
    print(f"found        : {result.sequences.as_tuples()}")
    print(f"F1           : {report.f1:.2f}")
    return 0


def _print_stats(stats: "ExecutionStats") -> None:
    print(stats.summary())


def _cmd_query(args: argparse.Namespace) -> int:
    from repro import OfflineEngine, OnlineEngine, parse, plan
    from repro.core.config import OnlineConfig, RankingConfig
    from repro.detectors.faults import fault_profile, faulty_zoo
    from repro.detectors.zoo import default_zoo
    from repro.video.datasets import DISTRACTOR_OBJECTS, build_movie, movie_by_title

    compiled = plan(parse(args.sql))
    spec = movie_by_title(args.movie)
    video = build_movie(spec, seed=args.seed, scale=args.scale)
    print(f"plan : mode={compiled.mode} "
          f"query={(compiled.query or compiled.compound).describe()}")

    profile = fault_profile(args.fault_profile).with_seed(args.seed)
    zoo = faulty_zoo(default_zoo(seed=args.seed), profile)
    online_config = OnlineConfig(
        # Injected faults are per model invocation; the chunked cache
        # collapses those to one draw per (label, video), which would make
        # `--fault-profile` look like a no-op.  Serial per-clip evaluation
        # gives faults (and retries) their real surface.
        cache_detections=not profile.active,
        retry_max_attempts=args.retries,
        failure_policy=args.on_failure,
        predicate_order=args.predicate_order,
    )
    if profile.active:
        print(f"faults: profile={profile.name} retries={args.retries} "
              f"on-failure={args.on_failure}")

    if compiled.mode == "online":
        from repro import ExecutionContext

        engine = OnlineEngine(zoo=zoo, config=online_config)
        want_stats = args.stats or args.stats_json
        context = ExecutionContext() if want_stats else None
        result = compiled.execute_online(engine, video, context=context)
        print(f"sequences: {result.sequences.as_tuples()}")
        if getattr(result, "degraded_sequences", ()):
            spans = [(iv.start, iv.end) for iv in result.degraded_sequences]
            print(f"degraded : {spans}")
        if context is not None:
            selectivity = dict(getattr(result, "selectivity", {}) or {})
            if args.stats_json:
                import json

                payload = context.snapshot().as_dict()
                if selectivity:
                    # None = label never probed; strict JSON, never NaN.
                    payload["selectivity"] = selectivity
                print(json.dumps(payload, sort_keys=True, allow_nan=False))
            if args.stats:
                _print_stats(context.snapshot())
                if selectivity:
                    rendered = ", ".join(
                        f"{label}={rate:.3f}" if rate is not None
                        else f"{label}=?"
                        for label, rate in sorted(selectivity.items())
                    )
                    print(f"  selectivity          : {rendered}")
        return 0

    engine = OfflineEngine(zoo=zoo, config=RankingConfig(online=online_config))
    object_labels = [*spec.objects, "person", *DISTRACTOR_OBJECTS]
    action_labels = [spec.action]
    if profile.active:
        # Ingestion gives up per video when retries run out; capture the
        # outcome and re-run failed videos instead of crashing the query.
        # One ingest is thousands of model invocations, so a shallow
        # budget leaves a give-up somewhere almost surely — escalate the
        # per-invocation budget each round.
        from dataclasses import replace

        for round_no in range(1, 6):
            engine = OfflineEngine(
                zoo=zoo,
                config=RankingConfig(
                    online=replace(
                        online_config,
                        retry_max_attempts=args.retries * round_no,
                    )
                ),
            )
            outcomes = engine.ingest_many(
                [video], object_labels, action_labels, on_error="capture"
            )
            if outcomes[0].ok:
                break
        else:
            print(f"ingestion failed after {round_no} rounds: "
                  f"{outcomes[0].error}")
            return 1
        print(f"ingest : ok after {round_no} round(s) "
              f"(retries={zoo.cost_meter.retries()}, "
              f"give-ups={zoo.cost_meter.giveups()})")
    else:
        engine.ingest(
            video,
            object_labels=object_labels,
            action_labels=action_labels,
        )
    result = compiled.execute_offline(engine)
    for video_id, start, end, score in engine.localized(result):
        print(f"{video_id}: clips [{start}, {end}]  score={score:.1f}")
    stats = result.stats
    print(f"cost: {stats.random_accesses} random + "
          f"{stats.sequential_accesses} sequential accesses")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments

    name = args.name
    if name not in experiments.__all__:
        print(f"unknown experiment {name!r}; see `repro list`", file=sys.stderr)
        return 2
    module = getattr(experiments, name)
    kwargs = {"seed": args.seed}
    if args.scale is not None:
        import inspect

        if "scale" in inspect.signature(module.run).parameters:
            kwargs["scale"] = args.scale
    result = module.run(**kwargs)
    print(result.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Streaming-service demo: attach movie streams, register each
    movie's canonical query live, push results as sequences close, and
    optionally cancel mid-stream or migrate the whole service through a
    snapshot bundle."""
    import asyncio
    import json

    from repro import Query
    from repro.detectors.zoo import default_zoo
    from repro.service import (
        AdmissionController,
        QueryService,
        ServiceClient,
        TenantQuota,
    )
    from repro.service.service import EVENT_FINAL
    from repro.video.datasets import build_movie, movie_by_title

    admission = AdmissionController(
        TenantQuota(
            max_concurrent=args.max_concurrent,
            model_unit_budget=args.unit_budget,
        )
    )
    service = QueryService(
        default_zoo(seed=args.seed),
        admission=admission,
        clip_batch=args.clip_batch,
    )
    videos = {}
    registered: list[tuple[str, str]] = []
    client = ServiceClient(service, tenant="demo")
    for title in args.movies:
        spec = movie_by_title(title)
        video = build_movie(spec, seed=args.seed, scale=args.scale)
        stream = spec.title.lower().replace(" ", "-")
        videos[stream] = video
        service.add_stream(stream, video)
        name = client.register(
            stream, Query(objects=list(spec.objects), action=spec.action)
        )
        registered.append((stream, name))
        print(f"attach : {stream} ({video.meta.n_clips} clips) "
              f"query {name}: {spec.action} [{', '.join(spec.objects)}]")

    async def drain(stream: str, name: str) -> None:
        queue = client.subscribe(stream, name)
        while True:
            event = await queue.get()
            if event.kind == EVENT_FINAL:
                spans = event.result.sequences.as_tuples()
                print(f"final  : {stream}/{name} {spans}")
                return
            iv = event.interval
            print(f"push   : {stream}/{name} clips [{iv.start}, {iv.end}]")

    async def run_service(svc: QueryService) -> None:
        first_stream, first_name = registered[0]
        cancelled = False
        while any(not svc.done(s) for s in svc.streams()):
            for stream in svc.streams():
                svc.step(stream)
                await asyncio.sleep(0)
            position = svc.position(first_stream)
            if (
                args.cancel_after is not None
                and not cancelled
                and not svc.done(first_stream)
                and position >= args.cancel_after
            ):
                client.cancel(first_stream, first_name)
                cancelled = True
                print(f"cancel : {first_stream}/{first_name} "
                      f"at clip {position}")

    async def main() -> QueryService:
        drains = [
            asyncio.create_task(drain(stream, name))
            for stream, name in registered
        ]
        svc = service
        if args.snapshot_at is not None:
            first_stream = registered[0][0]
            while (
                svc.position(first_stream) < args.snapshot_at
                and not svc.done(first_stream)
            ):
                for stream in svc.streams():
                    svc.step(stream)
                    await asyncio.sleep(0)
            bundle = svc.snapshot().to_dict()
            print(f"migrate: captured v{bundle['version']} bundle "
                  f"({len(bundle['streams'])} streams) — resuming in a "
                  f"fresh service")
            svc = QueryService.resume(
                json.loads(json.dumps(bundle)),
                videos,
                default_zoo(seed=args.seed),
                admission=AdmissionController(
                    TenantQuota(
                        max_concurrent=args.max_concurrent,
                        model_unit_budget=args.unit_budget,
                    )
                ),
                clip_batch=args.clip_batch,
            )
            # Re-attach the drains' subscriptions to the new process.
            for task in drains:
                task.cancel()
            client.rebind(svc)
            drains = [
                asyncio.create_task(drain(stream, name))
                for stream, name in registered
                if name in svc.live(stream)
            ]
        await run_service(svc)
        await asyncio.gather(*drains, return_exceptions=True)
        return svc

    final_service = asyncio.run(main())
    if args.stats_json:
        print(json.dumps(final_service.health(), sort_keys=True))
    return 0


def _cmd_repo(args: argparse.Namespace) -> int:
    import json

    from repro.storage.repository import VideoRepository
    from repro.storage.sharded import ShardedRepository, describe, is_sharded

    if args.repo_command == "shard":
        if is_sharded(args.src):
            source = ShardedRepository.load(args.src).merged()
        else:
            source = VideoRepository.load(args.src)
        sharded = ShardedRepository.split(source, args.shards)
        sharded.save(args.out)
        print(
            f"sharded {source.n_videos} videos / {source.total_clips} clips "
            f"into {args.shards} shards at {args.out}"
        )
        for line in json.dumps(describe(args.out), indent=2).splitlines():
            print(line)
        return 0
    if args.repo_command == "info":
        info = describe(args.dir)
        if args.json:
            print(json.dumps(info, sort_keys=True))
        else:
            for key, value in info.items():
                print(f"{key}: {value}")
        return 0
    raise AssertionError(f"unknown repo command {args.repo_command!r}")


def _cmd_topk(args: argparse.Namespace) -> int:
    import json

    from repro.core.distributed import sharded_top_k
    from repro.core.query import Query
    from repro.core.rvaq import RVAQ
    from repro.storage.repository import VideoRepository
    from repro.storage.sharded import ShardedRepository, is_sharded

    query = Query(objects=list(args.objects), action=args.action)
    sharded = None
    if is_sharded(args.dir):
        sharded = ShardedRepository.load(args.dir)
        if args.shards is not None and args.shards != sharded.n_shards:
            sharded = ShardedRepository.split(sharded.merged(), args.shards)
    elif args.shards is not None:
        sharded = ShardedRepository.split(
            VideoRepository.load(args.dir), args.shards
        )

    if sharded is not None:
        result = sharded_top_k(
            sharded, query, args.k, executor=args.executor
        )
        rows = list(result.rows)
        per_shard = [
            {
                "shard": report.shard,
                "candidates": len(report.candidates),
                "iterations": report.iterations,
                "rounds": report.rounds,
                "sorted_accesses": report.stats.sorted_accesses,
                "reverse_accesses": report.stats.reverse_accesses,
                "random_accesses": report.stats.random_accesses,
                "wall_s": round(report.wall_s, 6),
            }
            for report in result.per_shard
        ]
        stats = result.stats
        extra = {
            "n_shards": sharded.n_shards,
            "executor": args.executor,
            "rounds": result.rounds,
            "per_shard": per_shard,
        }
    else:
        from repro.core.config import RankingConfig

        repo = VideoRepository.load(args.dir)
        # Exact scores, matching the sharded path's gather contract — the
        # printed score is the sequence's true score either way, so the
        # same corpus reports the same rows sharded or not.
        exact = RankingConfig(require_exact_scores=True)
        single = RVAQ(repo, config=exact).top_k(query, args.k)
        rows = []
        for ranked in single.ranked:
            video_id, start = repo.to_local(ranked.interval.start)
            _, end = repo.to_local(ranked.interval.end)
            rows.append((video_id, start, end, ranked.score))
        stats = single.stats
        extra = {"n_shards": None, "executor": "serial", "per_shard": []}

    stats_payload = {
        "sorted_accesses": stats.sorted_accesses,
        "reverse_accesses": stats.reverse_accesses,
        "random_accesses": stats.random_accesses,
        **extra,
    }
    if args.json:
        payload = {
            "query": {"objects": list(args.objects), "action": args.action},
            "k": args.k,
            "rows": [list(row) for row in rows],
        }
        if args.stats:
            payload["stats"] = stats_payload
        print(json.dumps(payload, sort_keys=True))
        return 0
    for video_id, start, end, score in rows:
        print(f"{video_id}: clips [{start}, {end}]  score={score:.3f}")
    if args.stats:
        print(
            f"cost: {stats.random_accesses} random + "
            f"{stats.sorted_accesses + stats.reverse_accesses} sequential "
            f"accesses"
        )
        for entry in stats_payload["per_shard"]:
            print(
                f"  shard {entry['shard']:3d}: "
                f"{entry['iterations']:6d} pairs / {entry['rounds']:3d} "
                f"rounds, {entry['sorted_accesses'] + entry['reverse_accesses']:7d} "
                f"sequential + {entry['random_accesses']:6d} random, "
                f"{entry['wall_s'] * 1e3:.1f} ms"
            )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.eval import experiments
    from repro.video.datasets import MOVIES, YOUTUBE_QUERY_SETS

    print("experiments:")
    for name in experiments.__all__:
        print(f"  {name}")
    print("\nYouTube query sets (Table 1):")
    for spec in YOUTUBE_QUERY_SETS:
        objects = ", ".join(spec.objects)
        print(f"  {spec.qid}: {spec.action} [{objects}] ({spec.minutes} min)")
    print("\nmovies (Table 2):")
    for movie in MOVIES:
        objects = ", ".join(movie.objects)
        print(f"  {movie.title}: {movie.action} [{objects}] "
              f"({movie.minutes} min)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import generate

    names = tuple(args.only) if args.only else None
    path = generate(args.out, scale=args.scale, seed=args.seed, names=names)
    print(f"report written to {path}")
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "query": _cmd_query,
    "experiment": _cmd_experiment,
    "repo": _cmd_repo,
    "topk": _cmd_topk,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "list": _cmd_list,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — normal exit.
        try:
            sys.stdout.close()
        except OSError:  # reprolint: disable=RL004 - best-effort flush on a dead pipe
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - module CLI shim
    raise SystemExit(main())
