"""Frame/shot/clip geometry — all index arithmetic in one place."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import VideoModelError
from repro.utils.intervals import Interval, IntervalSet
from repro.video.model import ClipView, VideoGeometry, VideoMeta


GEO = VideoGeometry(frames_per_shot=10, shots_per_clip=5, fps=25.0)


class TestGeometry:
    def test_frames_per_clip(self):
        assert GEO.frames_per_clip == 50

    def test_frame_shot_clip_roundtrips(self):
        assert GEO.shot_of_frame(0) == 0
        assert GEO.shot_of_frame(19) == 1
        assert GEO.clip_of_frame(49) == 0
        assert GEO.clip_of_frame(50) == 1
        assert GEO.clip_of_shot(4) == 0
        assert GEO.clip_of_shot(5) == 1

    def test_span_lookups(self):
        assert GEO.frames_of_shot(2) == Interval(20, 29)
        assert GEO.frames_of_clip(1) == Interval(50, 99)
        assert GEO.shots_of_clip(2) == Interval(10, 14)

    @given(st.integers(0, 10_000))
    def test_frame_in_its_own_clip_span(self, frame):
        clip = GEO.clip_of_frame(frame)
        assert frame in GEO.frames_of_clip(clip)

    @given(st.integers(0, 10_000))
    def test_shot_in_its_own_clip_span(self, shot):
        clip = GEO.clip_of_shot(shot)
        assert shot in GEO.shots_of_clip(clip)

    def test_negative_indices_rejected(self):
        with pytest.raises(VideoModelError):
            GEO.clip_of_frame(-1)

    def test_seconds_conversion(self):
        assert GEO.seconds_to_frames(2.0) == 50
        assert GEO.frames_to_seconds(50) == pytest.approx(2.0)

    def test_with_clip_frames(self):
        resized = GEO.with_clip_frames(80)
        assert resized.shots_per_clip == 8
        assert resized.frames_per_shot == 10

    def test_with_clip_frames_requires_multiple(self):
        with pytest.raises(VideoModelError):
            GEO.with_clip_frames(55)

    def test_invalid_construction(self):
        with pytest.raises(Exception):
            VideoGeometry(frames_per_shot=0)
        with pytest.raises(VideoModelError):
            VideoGeometry(fps=0)


class TestIntervalProjection:
    def test_frame_interval_to_clips_majority(self):
        # frames 0..74 cover clip 0 fully, half of clip 1
        assert GEO.frame_interval_to_clips(Interval(0, 74)) == Interval(0, 1)
        # frames 0..70: clip 1 has 21 frames < 25 needed
        assert GEO.frame_interval_to_clips(Interval(0, 70)) == Interval(0, 0)

    def test_projection_none_when_too_small(self):
        assert GEO.frame_interval_to_clips(Interval(40, 55)) is None

    def test_full_cover_requirement(self):
        assert GEO.frame_interval_to_clips(Interval(0, 99), min_cover=1.0) == Interval(0, 1)
        assert GEO.frame_interval_to_clips(Interval(0, 98), min_cover=1.0) == Interval(0, 0)

    def test_clip_set_to_frames_roundtrip(self):
        clips = IntervalSet([(1, 2)])
        frames = GEO.clip_set_to_frames(clips)
        assert frames.as_tuples() == [(50, 149)]
        assert GEO.frame_set_to_clips(frames, min_cover=1.0) == clips

    def test_frame_set_to_shots(self):
        frames = IntervalSet([(0, 24)])  # shots 0,1 full; shot 2 half
        shots = GEO.frame_set_to_shots(frames, min_cover=0.5)
        assert shots.as_tuples() == [(0, 2)]

    def test_invalid_cover(self):
        with pytest.raises(VideoModelError):
            GEO.frame_interval_to_clips(Interval(0, 10), min_cover=0.0)


class TestVideoMeta:
    def test_counts_drop_partial_clip(self):
        meta = VideoMeta(video_id="v", n_frames=130, geometry=GEO)
        assert meta.n_clips == 2
        assert meta.n_shots == 10
        assert meta.usable_frames == 100

    def test_too_short_video_rejected(self):
        with pytest.raises(VideoModelError):
            VideoMeta(video_id="v", n_frames=30, geometry=GEO)

    def test_duration(self):
        meta = VideoMeta(video_id="v", n_frames=250, geometry=GEO)
        assert meta.duration_seconds == pytest.approx(10.0)

    def test_with_geometry(self):
        meta = VideoMeta(video_id="v", n_frames=400, geometry=GEO)
        resized = meta.with_geometry(GEO.with_clip_frames(100))
        assert resized.n_clips == 4
        assert resized.video_id == "v"


class TestClipView:
    def test_spans(self):
        meta = VideoMeta(video_id="v", n_frames=200, geometry=GEO)
        view = ClipView(meta, 1)
        assert view.frames == Interval(50, 99)
        assert view.shots == Interval(5, 9)

    def test_out_of_range(self):
        meta = VideoMeta(video_id="v", n_frames=200, geometry=GEO)
        with pytest.raises(VideoModelError):
            ClipView(meta, 4)
