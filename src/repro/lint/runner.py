"""File discovery, rule execution, pragma/baseline filtering, reporting."""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.lint.base import Finding, LintContext, Rule, all_rules
from repro.lint.baseline import Baseline
from repro.lint.pragmas import FilePragmas

__all__ = ["LintReport", "collect_files", "lint_paths", "lint_source"]

#: Directory names never scanned: fixture trees hold *intentional*
#: violations the test suite feeds to the linter directly.
_SKIPPED_DIRS = frozenset(
    {"fixtures", "__pycache__", ".git", ".venv", "build", "dist"}
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def counts(self) -> dict[str, int]:
        """Non-baselined finding count per rule code, every rule present."""
        counts = {code: 0 for code in all_rules()}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    # -- output formats ----------------------------------------------------------

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        for error in self.parse_errors:
            lines.append(f"error: {error}")
        per_rule = ", ".join(
            f"{code}: {n}" for code, n in self.counts().items() if n
        )
        lines.append(
            f"{len(self.findings)} finding(s)"
            + (f" ({per_rule})" if per_rule else "")
            + f" in {self.files_checked} file(s);"
            f" {len(self.baselined)} baselined, {self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "findings": [f.to_json() for f in self.findings],
                "counts": self.counts(),
                "files_checked": self.files_checked,
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "parse_errors": self.parse_errors,
            },
            indent=2,
        )

    def render_summary(self) -> str:
        """One markdown table — the CI job-summary payload."""
        rules = all_rules()
        counts = self.counts()
        lines = [
            "### reprolint",
            "",
            "| rule | name | findings |",
            "| --- | --- | ---: |",
        ]
        for code, rule in rules.items():
            lines.append(f"| {code} | {rule.name} | {counts.get(code, 0)} |")
        lines.append(
            f"| | **total** | **{len(self.findings)}** |",
        )
        lines.append("")
        lines.append(
            f"{self.files_checked} files checked, "
            f"{len(self.baselined)} baselined, {self.suppressed} suppressed."
        )
        return "\n".join(lines)


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into the sorted list of .py files to lint."""
    out: list[Path] = []
    for path in paths:
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIPPED_DIRS.intersection(sub.parts):
                    out.append(sub)
    return out


def lint_source(
    path: str,
    source: str,
    rules: Mapping[str, Rule] | None = None,
) -> list[Finding]:
    """Lint one in-memory source file (pragmas applied, no baseline).

    This is the entry point the test suite uses to feed fixture files
    through individual rules.
    """
    active = rules if rules is not None else all_rules()
    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, source=source, tree=tree)
    pragmas = FilePragmas(source)
    findings: list[Finding] = []
    for rule in active.values():
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not pragmas.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint files/directories and return a filtered :class:`LintReport`."""
    rules = all_rules()
    if select is not None:
        wanted = {code.upper() for code in select}
        rules = {code: rule for code, rule in rules.items() if code in wanted}
    for code in ignore:
        rules.pop(code.upper(), None)

    report = LintReport()
    raw: list[Finding] = []
    for file_path in collect_files(paths):
        rel = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{rel}: {exc}")
            continue
        report.files_checked += 1
        ctx = LintContext(path=rel, source=source, tree=tree)
        pragmas = FilePragmas(source)
        for rule in rules.values():
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if pragmas.suppresses(finding):
                    report.suppressed += 1
                else:
                    raw.append(finding)
    raw.sort()
    if baseline is not None:
        report.findings, report.baselined = baseline.partition(raw)
    else:
        report.findings = raw
    return report
