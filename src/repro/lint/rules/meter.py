"""RL010 meter-conservation: a charge that can be abandoned must be refunded.

PR 9's double-charge bug: the chunked path charged the
:class:`~repro.detectors.cost.CostMeter` per chunk, an error abandoned
the chunk mid-flight, and the retry charged again — the meter drifted
from the ground-truth spend and every adaptive decision downstream
(quota, ordering) was made on wrong numbers.  The conservation law is
simple: on every path from a ``meter.record(...)`` to an abrupt exit,
the unit must be refunded, reconciled, or merged before the raise.

The check is the gen/kill pairing query on the CFG
(:func:`repro.lint.dataflow.paths_reaching`): from each charge
statement, is any ``raise`` reachable without passing a refund
statement?  An enclosing ``try`` whose handler or ``finally`` performs
the refund settles the path and is honoured (the handler edge is not in
the CFG for nested statements, so that case is recognised on the AST).
``repro/detectors`` itself is exempt — it *implements* the meter, and
its internal bookkeeping (e.g. refund-then-rethrow) is the machinery
the rest of the engine is being held to.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.base import Finding, LintContext, Rule, dotted_name, register
from repro.lint.dataflow import build_cfg, enclosing_statements, paths_reaching

#: Meter methods that charge a unit.
CHARGE_METHODS = frozenset({"record", "record_cached"})

#: Meter (or bookkeeping) methods that settle a charged unit: refunds,
#: chunk reconciliation, merging a sub-meter into the parent, salvage.
SETTLE_METHODS = frozenset(
    {
        "refund",
        "refund_cached",
        "reconcile_chunk",
        "merge",
        "salvage",
        "consume",
        "record_giveup",
    }
)


def _is_meter_call(node: ast.Call, methods: frozenset[str]) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in methods:
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and "meter" in receiver.lower()


def _settles(stmt: ast.stmt) -> bool:
    """Does this statement (sub-tree) perform any settling call?"""
    return any(
        isinstance(node, ast.Call) and _is_meter_call(node, SETTLE_METHODS)
        for node in ast.walk(stmt)
    )


def _settled_by_enclosing_try(ctx: LintContext, node: ast.AST) -> bool:
    """True when an enclosing ``try`` refunds in a handler or ``finally``
    — the raise escapes *through* the settlement, so the unit is safe
    even though the CFG (which only models handler edges for top-level
    try-body statements) cannot see it."""
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if not isinstance(anc, ast.Try):
            continue
        for handler in anc.handlers:
            if any(_settles(stmt) for stmt in handler.body):
                return True
        if any(_settles(stmt) for stmt in anc.finalbody):
            return True
    return False


@register
@dataclass
class MeterConservationRule(Rule):
    code: str = "RL010"
    name: str = "meter-conservation"
    rationale: str = (
        "a CostMeter charge abandoned by a raise without a refund/"
        "reconcile drifts the meter from ground-truth spend"
    )
    scopes: tuple[tuple[str, ...], ...] = (("repro",),)
    excluded: tuple[tuple[str, ...], ...] = field(
        default_factory=lambda: (("repro", "lint"), ("repro", "detectors"))
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: LintContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        enclosing = enclosing_statements(func)
        charges: list[tuple[ast.Call, ast.stmt]] = []
        for node, stmt in enclosing.items():
            if isinstance(node, ast.Call) and _is_meter_call(
                node, CHARGE_METHODS
            ):
                charges.append((node, stmt))
        if not charges:
            return
        cfg = build_cfg(func)
        settle_nodes = [
            index
            for index, stmt in cfg.statements()
            if _settles(stmt)
        ]
        raise_nodes = {
            index: stmt
            for index, stmt in cfg.statements()
            if isinstance(stmt, ast.Raise)
        }
        for call, stmt in charges:
            start = cfg.node_of(stmt)
            if start is None:
                continue
            escaped = paths_reaching(
                cfg,
                start,
                raise_nodes,
                avoiding=(i for i in settle_nodes if i != start),
            )
            for index in sorted(escaped):
                raise_stmt = raise_nodes[index]
                if _settled_by_enclosing_try(ctx, raise_stmt):
                    continue
                receiver = dotted_name(call.func) or "meter"
                yield ctx.finding(
                    call,
                    self.code,
                    f"{receiver}(...) charge can be abandoned by the raise "
                    f"at line {raise_stmt.lineno} without a refund/"
                    "reconcile on that path; settle the unit (refund, "
                    "reconcile_chunk, merge) before propagating the error",
                )
                break  # one finding per charge, not per escaping raise