"""Session migration — one bundle that moves a live service between
processes.

The v4 session checkpoints (:meth:`StreamSession.state_dict`) capture one
query; migrating a *service* means capturing every live session on every
stream, the scheduler state around them (stream cursors, fleet
membership, the shared caches' charge bookkeeping — which rides inside
each session checkpoint), the registry's book of record and the admission
ledgers, all in one versioned, JSON-serialisable bundle.

The contract matches the session-level one: deterministic components
(model zoos, videos, configs, quota tables) are *not* serialised — the
operator rebuilds the new service exactly as the old one was built, then
loads the bundle.  Output after a migration is result-identical to the
uninterrupted run: sessions resume their quota state and open runs, the
caches keep metering already-charged clips as hits, and the admission
ledgers keep counting from where they were.

Capturing a snapshot freezes the source: every captured session is marked
``SNAPSHOTTED`` (:meth:`StreamSession.mark_snapshotted`), so the old
process cannot keep emitting results the new one will emit again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError
from repro._typing import StateDict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import QueryService

__all__ = ["ServiceState", "SERVICE_BUNDLE_VERSION"]

#: Format tag of service migration bundles.  Bump on layout changes; old
#: bundles are refused loudly rather than misread.
SERVICE_BUNDLE_VERSION = 1


@dataclass(frozen=True)
class ServiceState:
    """A captured service, ready to serialise or resume.

    ``streams`` maps stream name → that stream's fleet checkpoint
    (:meth:`repro.core.scheduler.FleetRun.state_dict`, which bundles each
    live session, its execution counters and the shared cache's charge
    state).  ``registry`` and ``admission`` are the corresponding
    components' state dicts.
    """

    version: int
    streams: Mapping[str, StateDict]
    registry: StateDict
    admission: StateDict

    @classmethod
    def snapshot(cls, service: "QueryService") -> "ServiceState":
        """Capture a live service and freeze its sessions.

        Sessions are marked ``SNAPSHOTTED`` *after* the full bundle is
        assembled, so a mid-capture failure leaves the service running.
        """
        streams = {
            name: fleet.state_dict()
            for name, fleet in service.fleets().items()
        }
        state = cls(
            version=SERVICE_BUNDLE_VERSION,
            streams=streams,
            registry=service.registry.state_dict(),
            admission=service.admission.state_dict(),
        )
        for fleet in service.fleets().values():
            for name in fleet.live:
                fleet.session(name).mark_snapshotted()
        return state

    def to_dict(self) -> StateDict:
        """The bundle as one JSON-serialisable dict."""
        return {
            "version": self.version,
            "streams": {k: dict(v) for k, v in self.streams.items()},
            "registry": dict(self.registry),
            "admission": dict(self.admission),
        }

    @classmethod
    def from_dict(cls, payload: StateDict) -> "ServiceState":
        """Parse a bundle, refusing unknown format versions."""
        version = payload.get("version")
        if version != SERVICE_BUNDLE_VERSION:
            raise ConfigurationError(
                f"unsupported service bundle version {version!r} "
                f"(this build reads v{SERVICE_BUNDLE_VERSION})"
            )
        return cls(
            version=int(version),
            streams=dict(payload["streams"]),
            registry=dict(payload["registry"]),
            admission=dict(payload["admission"]),
        )
