"""Parser for the SQL-like dialect — the paper's example queries must all
parse."""

from __future__ import annotations

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.ast import ActionEquals, BooleanExpr, ObjectsInclude
from repro.sql.parser import parse

ONLINE = """
SELECT MERGE(clipID) AS Sequence
FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector,
      act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car', 'human')
"""

OFFLINE = """
SELECT MERGE(clipID) AS Sequence, RANK(act, obj)
FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker,
      act USING ActionRecognizer)
WHERE act='jumping' AND obj.include('car', 'human')
ORDER BY RANK(act, obj) LIMIT 5
"""


class TestPaperQueries:
    def test_online_form(self):
        stmt = parse(ONLINE)
        assert not stmt.is_ranked
        assert stmt.source.video == "inputVideo"
        assert stmt.source.alias_model("obj") == "ObjectDetector"
        assert stmt.source.alias_model("act") == "ActionRecognizer"
        assert stmt.source.alias_model("clipID") is None
        assert isinstance(stmt.where, BooleanExpr)
        assert stmt.where.op == "AND"

    def test_offline_form(self):
        stmt = parse(OFFLINE)
        assert stmt.is_ranked
        assert stmt.limit == 5
        assert stmt.order_by.arguments == ("act", "obj")

    def test_inc_alias(self):
        stmt = parse(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, o USING D) "
            "WHERE o.inc('car')"
        )
        pred = stmt.where
        assert isinstance(pred, ObjectsInclude)
        assert pred.labels == ("car",)


class TestPredicates:
    def test_action_equals(self):
        stmt = parse(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
            "WHERE a = 'robot dancing'"
        )
        assert stmt.where == ActionEquals(alias="a", action="robot dancing")

    def test_or_and_precedence(self):
        stmt = parse(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
            "WHERE a='x' AND a='y' OR a='z'"
        )
        assert isinstance(stmt.where, BooleanExpr)
        assert stmt.where.op == "OR"  # OR binds loosest

    def test_parentheses(self):
        stmt = parse(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
            "WHERE a='x' AND (a='y' OR a='z')"
        )
        assert stmt.where.op == "AND"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT FROM x",
            "SELECT MERGE(c FROM (PROCESS v PRODUCE c) WHERE a='x'",
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE a='x' LIMIT 0",
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE a.'x'",
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, c) WHERE a='x'",
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE a='x' garbage",
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c) WHERE a.unknown('x')",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(SqlSyntaxError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as err:
            parse("SELECT MERGE(c FROM x")
        assert err.value.position is not None
