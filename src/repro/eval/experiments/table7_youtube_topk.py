"""Table 7 — offline top-K performance on the YouTube sets q1 and q2 at
K = 5, across the four algorithms.

Unlike Table 6 this runs over a *multi-video repository* (every video of
the query set is ingested; global clip ids keep sequences within videos).
Paper shape target: RVAQ beats the alternatives by roughly an order of
magnitude in random accesses; FA is worst.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.engine import OfflineEngine
from repro.detectors.zoo import default_zoo
from repro.eval.experiments.table6_movie_topk import ALGORITHMS, TopKMeasurement
from repro.utils.tables import render_table
from repro.video.datasets import (
    DISTRACTOR_OBJECTS,
    build_youtube_set,
    youtube_set_by_id,
)


@dataclass(frozen=True)
class Table7Result:
    k: int
    #: qid -> algorithm measurements
    measurements: dict[str, tuple[TopKMeasurement, ...]]

    def render(self) -> str:
        rows = []
        for qid, per_algo in self.measurements.items():
            for m in per_algo:
                rows.append(
                    (qid, m.algorithm, m.runtime_ms, m.random_accesses)
                )
        return render_table(
            ["query", "method", "runtime (ms)", "# random acc"],
            rows,
            title=f"Table 7 — YouTube dataset (K={self.k})",
            precision=1,
        )

    def measurement(self, qid: str, algorithm: str) -> TopKMeasurement:
        for m in self.measurements[qid]:
            if m.algorithm == algorithm:
                return m
        raise KeyError((qid, algorithm))


def run(
    seed: int = 0,
    scale: float = 0.15,
    k: int = 5,
    qids: Sequence[str] = ("q1", "q2"),
    algorithms: Sequence[str] = ALGORITHMS,
) -> Table7Result:
    measurements: dict[str, tuple[TopKMeasurement, ...]] = {}
    for qid in qids:
        spec = youtube_set_by_id(qid)
        query_set = build_youtube_set(spec, seed, scale)
        engine = OfflineEngine(zoo=default_zoo(seed=seed))
        for video in query_set.videos:
            engine.ingest(
                video,
                object_labels=[*spec.objects, "person", *DISTRACTOR_OBJECTS],
                action_labels=[spec.action],
            )
        per_algo = []
        for algorithm in algorithms:
            start = time.perf_counter()
            result = engine.top_k(spec.query, k=k, algorithm=algorithm)
            wall = time.perf_counter() - start
            per_algo.append(
                TopKMeasurement(
                    algorithm=algorithm,
                    k=k,
                    wall_seconds=wall,
                    simulated_io_ms=result.stats.simulated_ms,
                    random_accesses=result.stats.random_accesses,
                    sequential_accesses=result.stats.sequential_accesses,
                )
            )
        measurements[qid] = tuple(per_algo)
    return Table7Result(k=k, measurements=measurements)
