"""Synthetic video substrate.

The paper's algorithms never look at pixels: they consume per-frame object
detections and per-shot action classifications, organised by the
frame → shot → clip → sequence hierarchy of §2.  This subpackage provides
that hierarchy (:mod:`repro.video.model`), ground-truth annotations
(:mod:`repro.video.ground_truth`), a scripted scene generator
(:mod:`repro.video.synthesis`), deterministic builders for the paper's two
evaluation datasets (:mod:`repro.video.datasets`) and a clip-granularity
stream iterator (:mod:`repro.video.stream`).
"""

from repro.video.ground_truth import GroundTruth
from repro.video.model import ClipView, VideoGeometry, VideoMeta
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo, SceneSpec, TrackSpec, synthesize_video

__all__ = [
    "VideoGeometry",
    "VideoMeta",
    "ClipView",
    "GroundTruth",
    "ClipStream",
    "LabeledVideo",
    "SceneSpec",
    "TrackSpec",
    "synthesize_video",
]
