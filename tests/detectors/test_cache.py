"""DetectionScoreCache: vectorised counts, charge metering, checkpoints."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import OnlineConfig
from repro.detectors.cache import DetectionScoreCache, _runs_of
from repro.detectors.zoo import default_zoo
from repro.errors import ConfigurationError
from tests.conftest import make_kitchen_video

VIDEO = make_kitchen_video(seed=31, duration_s=240.0, video_id="cachevid")
LABELS = {"object": ["faucet", "person"], "action": ["washing dishes"]}


def make_cache(zoo, **kwargs) -> DetectionScoreCache:
    return DetectionScoreCache(
        zoo,
        VIDEO.meta,
        VIDEO.truth,
        object_threshold=zoo.detector.threshold,
        action_threshold=zoo.recognizer.threshold,
        **kwargs,
    )


class TestCounts:
    @pytest.mark.parametrize("chunk_clips", [1, 7, 64, 10_000])
    def test_counts_match_serial_score_clip(self, zoo, chunk_clips):
        """Every clip's cached count equals the serial Eq. 1/2 count, for
        any chunking."""
        cache = make_cache(zoo, chunk_clips=chunk_clips)
        for kind, labels in LABELS.items():
            model = zoo.detector if kind == "object" else zoo.recognizer
            for label in labels:
                for clip_id in range(VIDEO.meta.n_clips):
                    scores = model.score_clip(
                        VIDEO.meta, VIDEO.truth, label, clip_id
                    )
                    expected = int(
                        np.count_nonzero(scores >= model.threshold)
                    )
                    count, units = cache.counts(kind, label, clip_id)
                    assert count == expected
                    assert units == len(scores)

    def test_units_per_clip(self, zoo):
        cache = make_cache(zoo)
        geometry = VIDEO.meta.geometry
        assert cache.units_per_clip("object") == geometry.frames_per_clip
        assert cache.units_per_clip("action") == geometry.shots_per_clip

    def test_counts_do_not_charge(self, zoo):
        fresh = default_zoo(seed=3)
        cache = make_cache(fresh)
        cache.counts("object", "faucet", 0)
        assert fresh.cost_meter.units() == 0
        assert fresh.cost_meter.cached_units() == 0


class TestCharging:
    def test_first_lookup_charges_fresh_units(self):
        zoo = default_zoo(seed=3)
        cache = make_cache(zoo)
        count, units, fresh = cache.lookup("object", "faucet", 5)
        assert fresh
        assert units == VIDEO.meta.geometry.frames_per_clip
        name = zoo.detector.name
        assert zoo.cost_meter.units(name) == units
        assert zoo.cost_meter.ms(name) == pytest.approx(
            units * zoo.detector.profile.ms_per_unit
        )
        assert zoo.cost_meter.cached_units(name) == 0

    def test_repeat_lookup_meters_cached_units(self):
        zoo = default_zoo(seed=3)
        cache = make_cache(zoo)
        first = cache.lookup("action", "washing dishes", 2)
        again = cache.lookup("action", "washing dishes", 2)
        assert first[:2] == again[:2]
        assert first[2] and not again[2]
        name = zoo.recognizer.name
        units = VIDEO.meta.geometry.shots_per_clip
        assert zoo.cost_meter.units(name) == units  # charged once
        assert zoo.cost_meter.cached_units(name) == units

    def test_fresh_plus_cached_equals_serial(self):
        """The Table-8 invariant: across any access pattern, fresh+cached
        units equal what the uncached path would have charged."""
        zoo = default_zoo(seed=3)
        cache = make_cache(zoo, chunk_clips=8)
        accesses = [(kind, label, clip)
                    for kind, labels in LABELS.items()
                    for label in labels
                    for clip in (0, 1, 1, 5, 5, 5, 2)]
        serial = 0
        for kind, label, clip in accesses:
            _, units, _ = cache.lookup(kind, label, clip)
            serial += units
        meter = zoo.cost_meter
        assert meter.units() + meter.cached_units() == serial


class TestCompatibility:
    def test_rejects_other_video(self, zoo):
        cache = make_cache(zoo)
        other = make_kitchen_video(seed=32, duration_s=240.0,
                                   video_id="othervid")
        with pytest.raises(ConfigurationError, match="cache holds video"):
            cache.check_compatible(
                other.meta,
                object_threshold=zoo.detector.threshold,
                action_threshold=zoo.recognizer.threshold,
            )

    def test_rejects_threshold_mismatch(self, zoo):
        cache = make_cache(zoo)
        with pytest.raises(ConfigurationError, match="thresholds differ"):
            cache.check_compatible(
                VIDEO.meta,
                object_threshold=0.99,
                action_threshold=zoo.recognizer.threshold,
            )

    def test_rejects_nonpositive_chunk(self, zoo):
        with pytest.raises(ConfigurationError, match="chunk_clips"):
            make_cache(zoo, chunk_clips=0)

    def test_for_video_resolves_config_thresholds(self, zoo):
        config = OnlineConfig(object_threshold=0.25, action_threshold=0.75)
        cache = DetectionScoreCache.for_video(zoo, VIDEO, config)
        assert cache.threshold("object") == 0.25
        assert cache.threshold("action") == 0.75
        default = DetectionScoreCache.for_video(zoo, VIDEO)
        assert default.threshold("object") == zoo.detector.threshold
        assert default.threshold("action") == zoo.recognizer.threshold


class TestCheckpointing:
    def test_state_round_trip_preserves_charged_set(self):
        zoo = default_zoo(seed=3)
        cache = make_cache(zoo)
        for clip in (0, 1, 2, 7, 9):
            cache.lookup("object", "faucet", clip)
        cache.lookup("action", "washing dishes", 4)
        state = json.loads(json.dumps(cache.state_dict()))

        restored_zoo = default_zoo(seed=3)
        restored = make_cache(restored_zoo)
        restored.load_state_dict(state)
        # Restoring must not re-charge the meter...
        assert restored_zoo.cost_meter.units() == 0
        # ...and previously-charged clips now meter as cached.
        _, units, fresh = restored.lookup("object", "faucet", 7)
        assert not fresh
        assert restored_zoo.cost_meter.units(restored_zoo.detector.name) == 0
        assert (
            restored_zoo.cost_meter.cached_units(restored_zoo.detector.name)
            == units
        )
        # An uncharged clip still charges fresh units.
        _, _, fresh = restored.lookup("object", "faucet", 3)
        assert fresh

    def test_state_dict_is_run_length_encoded(self, zoo):
        fresh_zoo = default_zoo(seed=3)
        cache = make_cache(fresh_zoo)
        for clip in (0, 1, 2, 10, 12):
            cache.lookup("object", "faucet", clip)
        state = cache.state_dict()
        assert state["charged"]["object:faucet"] == [[0, 2], [10, 10], [12, 12]]

    def test_rejects_unknown_kind(self, zoo):
        cache = make_cache(zoo)
        with pytest.raises(ConfigurationError, match="unknown detector kind"):
            cache.load_state_dict({"charged": {"pose:hand": [[0, 1]]}})


class TestRunsOf:
    def test_empty_and_full(self):
        assert _runs_of(np.zeros(4, dtype=bool)) == []
        assert _runs_of(np.ones(4, dtype=bool)) == [[0, 3]]

    def test_mixed_runs(self):
        mask = np.array([1, 1, 0, 1, 0, 0, 1], dtype=bool)
        assert _runs_of(mask) == [[0, 1], [3, 3], [6, 6]]
