"""Temporally correlated detection-noise processes.

Real detector errors are bursty: a false positive on one frame makes one on
the next likelier (the object that fooled the detector is still in view),
and misses cluster around occlusions.  We model the *thresholded* firing
indicator of a detector as a two-state renewal process with geometric state
durations, which has two calibration knobs per regime:

* the marginal firing rate (the TPR inside ground-truth presence, the FPR
  outside it), and
* the mean firing-run length (``burst``), controlling correlation.

Scores are then drawn conditionally on the (firing, truly-present) pair, so
thresholding at the profile's operating threshold reproduces the calibrated
TPR/FPR exactly while true detections still rank above false alarms —
which is what the offline ranking experiments need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectorError


def alternating_indicator(
    rng: np.random.Generator,
    n: int,
    rate: float,
    mean_run: float,
) -> np.ndarray:
    """A 0/1 process of length ``n`` with marginal P(1) = ``rate`` and mean
    1-run length ``mean_run`` (geometric on/off durations).

    Vectorised: enough alternating run lengths are drawn at once and
    repeated into a dense array, so long movies cost microseconds per label.
    """
    if n < 0:
        raise DetectorError(f"sequence length must be >= 0; got {n}")
    if n == 0:
        return np.zeros(0, dtype=bool)
    if rate <= 0.0:
        return np.zeros(n, dtype=bool)
    if rate >= 1.0:
        return np.ones(n, dtype=bool)
    mean_on = max(1.0, float(mean_run))
    mean_off = mean_on * (1.0 - rate) / rate
    if mean_off < 1.0:
        # Geometric runs are at least one unit long; preserve the marginal
        # rate by lengthening the on-runs instead of flooring the off-runs.
        mean_off = 1.0
        mean_on = rate / (1.0 - rate)

    # Expected runs needed, padded generously; top up in the rare shortfall.
    pieces: list[np.ndarray] = []
    produced = 0
    start_on = bool(rng.random() < rate)
    while produced < n:
        expected_pairs = int((n - produced) / (mean_on + mean_off)) + 8
        ons = rng.geometric(1.0 / mean_on, size=expected_pairs)
        offs = rng.geometric(1.0 / mean_off, size=expected_pairs)
        if start_on:
            runs = np.empty(2 * expected_pairs, dtype=np.int64)
            runs[0::2], runs[1::2] = ons, offs
            states = np.tile([True, False], expected_pairs)
        else:
            runs = np.empty(2 * expected_pairs, dtype=np.int64)
            runs[0::2], runs[1::2] = offs, ons
            states = np.tile([False, True], expected_pairs)
        chunk = np.repeat(states, runs)
        pieces.append(chunk)
        produced += len(chunk)
        start_on = not bool(states[-1])  # continue with the opposite state
    return np.concatenate(pieces)[:n]


def conditional_scores(
    rng: np.random.Generator,
    firing: np.ndarray,
    present: np.ndarray,
    threshold: float,
    sharpness: float,
) -> np.ndarray:
    """Scores consistent with the firing indicator at ``threshold``.

    * firing & present  — true detection: Beta(sharpness, 1) mapped to
      ``[threshold, 1]`` (confident, concentrated near 1 for good models);
    * firing & absent   — false alarm: Beta(1, sharpness) mapped to
      ``[threshold, 1]`` (barely above threshold);
    * quiet & present   — miss: Beta(2, 2) mapped to ``[0, threshold)``
      (the detector saw *something*);
    * quiet & absent    — background: Beta(1, 4) mapped to ``[0, threshold)``.
    """
    if firing.shape != present.shape:
        raise DetectorError("firing/present masks must have the same shape")
    if not 0.0 < threshold < 1.0:
        raise DetectorError(f"threshold must be in (0, 1); got {threshold}")
    n = firing.shape[0]
    scores = np.empty(n, dtype=np.float64)

    tp = firing & present
    fp = firing & ~present
    miss = ~firing & present
    bg = ~firing & ~present
    scores[tp] = threshold + (1.0 - threshold) * rng.beta(sharpness, 1.0, tp.sum())
    scores[fp] = threshold + (1.0 - threshold) * rng.beta(1.0, sharpness, fp.sum())
    scores[miss] = threshold * rng.beta(2.0, 2.0, miss.sum())
    scores[bg] = threshold * rng.beta(1.0, 4.0, bg.sum())
    # Guard the open interval so thresholding is unambiguous.
    np.clip(scores, 0.0, 1.0, out=scores)
    scores[firing] = np.maximum(scores[firing], np.nextafter(threshold, 1.0))
    scores[~firing] = np.minimum(scores[~firing], np.nextafter(threshold, 0.0))
    return scores
