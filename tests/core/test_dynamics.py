"""The shared quota manager (repro.core.dynamics)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import OnlineConfig
from repro.core.dynamics import QuotaManager
from repro.core.indicators import PredicateOutcome
from repro.video.model import VideoGeometry

GEO = VideoGeometry()


def manager(config=None) -> QuotaManager:
    return QuotaManager(["car"], ["jumping"], GEO, config or OnlineConfig())


def outcome(label: str, kind: str, count: int, units: int) -> PredicateOutcome:
    return PredicateOutcome(
        label, kind, evaluated=True, count=count, units=units,
        indicator=False,
    )


class TestConstruction:
    def test_quotas_for_every_label(self):
        quotas = manager().quotas()
        assert set(quotas) == {"car", "jumping"}
        assert all(k >= 1 for k in quotas.values())

    def test_object_window_is_frames_action_window_is_shots(self):
        m = manager()
        assert m.tracker("car").table.w == GEO.frames_per_clip
        assert m.tracker("jumping").table.w == GEO.shots_per_clip

    def test_rates_start_at_priors(self):
        config = replace(OnlineConfig(), object_p0=0.02, action_p0=0.005)
        m = manager(config)
        rates = m.rates()
        assert rates["car"] == pytest.approx(0.02)
        assert rates["jumping"] == pytest.approx(0.005)


class TestUpdatePolicies:
    def test_negative_clips_feed_estimators(self):
        m = manager()
        before = m.rates()["car"]
        for _ in range(100):
            m.update(
                {
                    "car": outcome("car", "object", 10, 50),
                    "jumping": outcome("jumping", "action", 0, 5),
                },
                positive=False,
                in_guard_band=False,
            )
        assert m.rates()["car"] > before  # 20% firing folded in

    def test_guard_band_blocks_folding(self):
        m = manager()
        before = m.rates()["car"]
        for _ in range(100):
            m.update(
                {"car": outcome("car", "object", 40, 50),
                 "jumping": outcome("jumping", "action", 5, 5)},
                positive=False,
                in_guard_band=True,  # adjacent to a detection
            )
        # rate-preserving imputation: the estimate stays at the prior level
        assert m.rates()["car"] == pytest.approx(before, rel=0.5)

    def test_positive_clips_do_not_fold_by_default(self):
        m = manager()
        before = m.rates()["car"]
        for _ in range(100):
            m.update(
                {"car": outcome("car", "object", 45, 50),
                 "jumping": outcome("jumping", "action", 5, 5)},
                positive=True,
                in_guard_band=False,
            )
        assert m.rates()["car"] == pytest.approx(before, rel=0.5)

    def test_all_policy_folds_everything(self):
        m = manager(replace(OnlineConfig(), update_on="all"))
        for _ in range(100):
            m.update(
                {"car": outcome("car", "object", 45, 50),
                 "jumping": outcome("jumping", "action", 5, 5)},
                positive=True,
                in_guard_band=False,
            )
        assert m.rates()["car"] > 0.3

    def test_missing_outcome_imputed(self):
        m = manager()
        prior = m.rates()["jumping"]
        for _ in range(50):
            m.update(
                {"car": outcome("car", "object", 1, 50)},  # jumping skipped
                positive=False,
                in_guard_band=False,
            )
        # the skipped predicate observed nothing and its estimate stays at
        # the prior (advance() deliberately no-ops before any real data —
        # imputing from the prior alone would fabricate confidence)
        assert m.tracker("jumping").estimator.event_count == 0
        assert m.rates()["jumping"] == pytest.approx(prior)

    def test_quotas_track_rates(self):
        m = manager()
        low = m.quotas()["car"]
        for _ in range(300):
            m.update(
                {"car": outcome("car", "object", 15, 50),
                 "jumping": outcome("jumping", "action", 0, 5)},
                positive=False,
                in_guard_band=False,
            )
        assert m.quotas()["car"] > low


class TestVectorisedRefresh:
    def test_refresh_all_matches_per_tracker_refresh(self):
        """The batched bucket pass must reproduce tracker.refresh() exactly
        for every label, at any point of a run."""
        m = QuotaManager(
            ["car", "dog", "bike"], ["jumping"], GEO, OnlineConfig()
        )
        for step in range(50):
            m.update(
                {
                    "car": outcome("car", "object", step % 11, 50),
                    "dog": outcome("dog", "object", step % 3, 50),
                    "bike": outcome("bike", "object", 0, 50),
                    "jumping": outcome("jumping", "action", step % 2, 5),
                },
                positive=False,
                in_guard_band=False,
            )
            vectorised = {
                label: (m.tracker(label).k_crit, m.tracker(label).k_bg)
                for label in m.labels()
            }
            for label in m.labels():
                m.tracker(label).refresh()
            scalar = {
                label: (m.tracker(label).k_crit, m.tracker(label).k_bg)
                for label in m.labels()
            }
            assert vectorised == scalar

    def test_single_tracker_falls_back_to_scalar_path(self):
        m = QuotaManager(["car"], [], GEO, OnlineConfig())
        m.update(
            {"car": outcome("car", "object", 5, 50)},
            positive=False,
            in_guard_band=False,
        )
        expected = m.tracker("car").table.lookup(m.rates()["car"])
        assert m.quotas()["car"] == expected

    def test_nonuniform_tables_use_per_tracker_refresh(self):
        """A caller swapping in a custom-resolution table must still get
        correct quotas via the scalar fallback."""
        from dataclasses import replace as dc_replace

        m = QuotaManager(["car", "dog"], [], GEO, OnlineConfig())
        tracker = m.tracker("car")
        tracker.table = dc_replace(tracker.table, resolution=0.2, _memo={})
        m._uniform_buckets = False  # what __init__ would have detected
        m.refresh_all()
        for label in m.labels():
            t = m.tracker(label)
            assert t.k_crit == t.table.lookup(t.estimator.rate)
