"""Table 6 — offline top-K on *Coffee and Cigarettes* across algorithms
and K.  The movie is ingested at 2× the global benchmark scale (offline
experiments need the paper's sequence counts; the full movie has 21)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import table6_movie_topk

_result = None


def compute():
    global _result
    if _result is None:
        _result = table6_movie_topk.run(
            seed=BENCH_SEED, scale=min(1.0, 2 * BENCH_SCALE)
        )
        publish("table6_movie_topk", _result.render())
    return _result


def test_table6_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    small_k = result.measurements[0].k
    fa = result.measurement("fa", small_k)
    noskip = result.measurement("rvaq-noskip", small_k)
    traverse = result.measurement("pq-traverse", small_k)
    rvaq = result.measurement("rvaq", small_k)
    # paper ordering at small K: FA worst; RVAQ cheapest
    assert fa.random_accesses > traverse.random_accesses
    assert fa.random_accesses > rvaq.random_accesses
    assert rvaq.random_accesses <= noskip.random_accesses
    assert rvaq.random_accesses < traverse.random_accesses
    assert rvaq.runtime_ms < fa.runtime_ms
    # Pq-Traverse flat in K
    ks = sorted({m.k for m in result.measurements})
    flat = {result.measurement("pq-traverse", k).random_accesses for k in ks}
    assert len(flat) == 1
    # RVAQ approaches Pq-Traverse as K grows
    rvaq_big = result.measurement("rvaq", ks[-1])
    assert rvaq_big.random_accesses >= rvaq.random_accesses
