"""Correlated noise processes: marginal rates, run structure, score sides."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors.noise import alternating_indicator, conditional_scores
from repro.errors import DetectorError


RNG = lambda seed=0: np.random.default_rng(seed)  # noqa: E731


class TestAlternatingIndicator:
    @pytest.mark.parametrize("rate", [0.01, 0.1, 0.5, 0.9, 0.985])
    def test_marginal_rate(self, rate):
        x = alternating_indicator(RNG(1), 300_000, rate, mean_run=5.0)
        assert x.mean() == pytest.approx(rate, abs=0.01)

    def test_runs_are_bursty(self):
        # Mean on-run length should track the requested burst length.
        x = alternating_indicator(RNG(2), 400_000, 0.2, mean_run=12.0)
        changes = np.flatnonzero(np.diff(x.astype(np.int8)))
        # Count on-run lengths via run-length encoding.
        padded = np.concatenate(([0], x.astype(np.int8), [0]))
        starts = np.flatnonzero(np.diff(padded) == 1)
        ends = np.flatnonzero(np.diff(padded) == -1)
        mean_run = float(np.mean(ends - starts))
        assert mean_run == pytest.approx(12.0, rel=0.2)
        assert len(changes) > 0

    def test_degenerate_rates(self):
        assert not alternating_indicator(RNG(), 100, 0.0, 5.0).any()
        assert alternating_indicator(RNG(), 100, 1.0, 5.0).all()

    def test_zero_length(self):
        assert alternating_indicator(RNG(), 0, 0.5, 5.0).shape == (0,)

    def test_negative_length_rejected(self):
        with pytest.raises(DetectorError):
            alternating_indicator(RNG(), -1, 0.5, 5.0)

    @given(st.floats(0.01, 0.99), st.floats(1.0, 20.0))
    @settings(max_examples=20, deadline=None)
    def test_rate_property(self, rate, run):
        x = alternating_indicator(RNG(3), 120_000, rate, run)
        assert x.mean() == pytest.approx(rate, abs=0.05)


class TestConditionalScores:
    def test_threshold_separation(self):
        rng = RNG(4)
        firing = rng.random(10_000) < 0.3
        present = rng.random(10_000) < 0.5
        scores = conditional_scores(rng, firing, present, threshold=0.5, sharpness=5.0)
        assert (scores[firing] > 0.5).all()
        assert (scores[~firing] < 0.5).all()
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_true_detections_outscore_false_alarms(self):
        rng = RNG(5)
        firing = np.ones(20_000, dtype=bool)
        present = np.zeros(20_000, dtype=bool)
        present[:10_000] = True
        scores = conditional_scores(rng, firing, present, 0.5, 5.0)
        assert scores[:10_000].mean() > scores[10_000:].mean() + 0.1

    def test_shape_mismatch_rejected(self):
        rng = RNG(6)
        with pytest.raises(DetectorError):
            conditional_scores(
                rng, np.ones(3, bool), np.ones(4, bool), 0.5, 5.0
            )

    def test_invalid_threshold(self):
        rng = RNG(7)
        with pytest.raises(DetectorError):
            conditional_scores(rng, np.ones(2, bool), np.ones(2, bool), 1.0, 5.0)
