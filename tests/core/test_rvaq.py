"""Algorithm 4 — RVAQ, validated against brute-force top-K on hand-built
and randomly generated repositories."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.rvaq import RVAQ
from repro.core.scoring import MaxScoring, PaperScoring
from repro.errors import QueryError
from repro.storage.ingest import VideoIngest
from repro.storage.repository import VideoRepository
from repro.storage.table import ClipScoreTable
from repro.utils.intervals import IntervalSet

QUERY = Query(objects=["car"], action="jumping")


def build_repo(
    act_scores: list[float],
    car_scores: list[float],
    act_spans: list[tuple[int, int]],
    car_spans: list[tuple[int, int]],
) -> VideoRepository:
    n = len(act_scores)
    assert len(car_scores) == n
    ingest = VideoIngest(
        video_id="v",
        n_clips=n,
        object_tables={"car": ClipScoreTable("car", list(enumerate(car_scores)))},
        action_tables={
            "jumping": ClipScoreTable("jumping", list(enumerate(act_scores)))
        },
        object_sequences={"car": IntervalSet(car_spans)},
        action_sequences={"jumping": IntervalSet(act_spans)},
    )
    repo = VideoRepository()
    repo.add(ingest)
    return repo


def brute_force(repo: VideoRepository, query: Query, k: int, scoring=None):
    scoring = scoring or PaperScoring()
    p_q = RVAQ(repo, scoring).result_sequences(query)
    act = repo.table(query.action)
    objs = [repo.table(o) for o in query.objects]
    scored = []
    for interval in p_q:
        total = scoring.aggregate(
            scoring.clip_score(
                act.random_access(cid), [o.random_access(cid) for o in objs]
            )
            for cid in interval
        )
        scored.append((total, interval))
    scored.sort(key=lambda pair: pair[0], reverse=True)
    return scored[:k]


class TestResultSequences:
    def test_intersection(self):
        repo = build_repo(
            [1.0] * 10, [1.0] * 10, act_spans=[(0, 5)], car_spans=[(3, 8)]
        )
        p_q = RVAQ(repo).result_sequences(QUERY)
        assert p_q.as_tuples() == [(3, 5)]

    def test_requires_single_action(self):
        repo = build_repo([1.0], [1.0], [(0, 0)], [(0, 0)])
        with pytest.raises(QueryError):
            RVAQ(repo).result_sequences(Query(objects=["car"]))

    def test_empty_intersection(self):
        repo = build_repo(
            [1.0] * 10, [1.0] * 10, act_spans=[(0, 2)], car_spans=[(5, 8)]
        )
        result = RVAQ(repo).top_k(QUERY, 3)
        assert result.ranked == ()


class TestTopK:
    def test_matches_brute_force_set(self):
        act = [0.1, 5.0, 4.0, 0.2, 9.0, 8.0, 0.1, 2.0, 2.5, 0.3]
        car = [1.0, 2.0, 2.0, 1.0, 3.0, 3.0, 1.0, 1.5, 1.0, 1.0]
        repo = build_repo(
            act, car, act_spans=[(1, 2), (4, 5), (7, 8)], car_spans=[(0, 9)]
        )
        expected = brute_force(repo, QUERY, 2)
        result = RVAQ(repo).top_k(QUERY, 2)
        assert {r.interval for r in result.ranked} == {
            iv for _, iv in expected
        }

    def test_exact_mode_order_and_scores(self):
        act = [0.1, 5.0, 4.0, 0.2, 9.0, 8.0, 0.1, 2.0, 2.5, 0.3]
        car = [1.0, 2.0, 2.0, 1.0, 3.0, 3.0, 1.0, 1.5, 1.0, 1.0]
        repo = build_repo(
            act, car, act_spans=[(1, 2), (4, 5), (7, 8)], car_spans=[(0, 9)]
        )
        config = RankingConfig(require_exact_scores=True)
        result = RVAQ(repo, config=config).top_k(QUERY, 3)
        expected = brute_force(repo, QUERY, 3)
        assert [r.interval for r in result.ranked] == [iv for _, iv in expected]
        for ranked, (score, _) in zip(result.ranked, expected):
            assert ranked.exact
            assert ranked.score == pytest.approx(score)

    def test_k_larger_than_sequences_returns_all_exact(self):
        act = [1.0, 2.0, 3.0, 4.0]
        car = [1.0, 1.0, 1.0, 1.0]
        repo = build_repo(act, car, act_spans=[(0, 1), (3, 3)], car_spans=[(0, 3)])
        result = RVAQ(repo).top_k(QUERY, 10)
        assert len(result.ranked) == 2
        assert all(r.exact for r in result.ranked)

    def test_bounds_bracket_truth(self):
        act = [0.5, 3.0, 2.0, 7.0, 1.0, 6.0]
        car = [1.0, 1.0, 2.0, 1.0, 1.0, 2.0]
        repo = build_repo(act, car, act_spans=[(0, 2), (3, 5)], car_spans=[(0, 5)])
        result = RVAQ(repo).top_k(QUERY, 1)
        expected = dict(
            (iv, score) for score, iv in brute_force(repo, QUERY, 2)
        )
        for ranked in result.ranked:
            truth = expected[ranked.interval]
            assert ranked.lower_bound <= truth + 1e-9
            assert ranked.upper_bound >= truth - 1e-9

    def test_invalid_k(self):
        repo = build_repo([1.0], [1.0], [(0, 0)], [(0, 0)])
        with pytest.raises(QueryError):
            RVAQ(repo).top_k(QUERY, 0)


@st.composite
def random_instances(draw):
    n = draw(st.integers(4, 24))
    act_scores = [draw(st.floats(0.0, 10.0)) for _ in range(n)]
    car_scores = [draw(st.floats(0.0, 10.0)) for _ in range(n)]
    act_flags = [draw(st.booleans()) for _ in range(n)]
    car_flags = [draw(st.booleans()) for _ in range(n)]
    k = draw(st.integers(1, 5))
    return n, act_scores, car_scores, act_flags, car_flags, k


class TestPropertyAgainstBruteForce:
    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_top_k_set(self, instance):
        n, act_scores, car_scores, act_flags, car_flags, k = instance
        repo = build_repo(
            act_scores,
            car_scores,
            act_spans=IntervalSet.from_indicator(act_flags).as_tuples(),
            car_spans=IntervalSet.from_indicator(car_flags).as_tuples(),
        )
        expected = brute_force(repo, QUERY, k)
        result = RVAQ(repo).top_k(QUERY, k)
        assert len(result.ranked) == len(expected)
        got_scores = sorted(
            (round(score, 6) for score, _ in expected), reverse=True
        )
        # Compare by exact score multiset of the chosen intervals — ties can
        # legitimately swap which tied interval is returned.
        chosen = []
        for ranked in result.ranked:
            score = brute_force_single(repo, ranked.interval)
            chosen.append(round(score, 6))
        assert sorted(chosen, reverse=True) == got_scores

    @given(random_instances())
    @settings(max_examples=30, deadline=None)
    def test_alternative_scoring_scheme(self, instance):
        n, act_scores, car_scores, act_flags, car_flags, k = instance
        repo = build_repo(
            act_scores,
            car_scores,
            act_spans=IntervalSet.from_indicator(act_flags).as_tuples(),
            car_spans=IntervalSet.from_indicator(car_flags).as_tuples(),
        )
        scoring = MaxScoring()
        expected = brute_force(repo, QUERY, k, scoring)
        result = RVAQ(repo, scoring=scoring).top_k(QUERY, k)
        expected_scores = sorted((round(s, 6) for s, _ in expected), reverse=True)
        chosen = sorted(
            (
                round(brute_force_single(repo, r.interval, scoring), 6)
                for r in result.ranked
            ),
            reverse=True,
        )
        assert chosen == expected_scores


def brute_force_single(repo, interval, scoring=None):
    scoring = scoring or PaperScoring()
    act = repo.table("jumping")
    car = repo.table("car")
    return scoring.aggregate(
        scoring.clip_score(act.random_access(cid), [car.random_access(cid)])
        for cid in interval
    )


class TestMultiActionQueries:
    """The footnote-3 extension offline: extra actions rank like objects."""

    def _two_action_repo(self):
        n = 12
        jump = [float(i % 5) for i in range(n)]
        wave = [float((i * 3) % 7) for i in range(n)]
        car = [1.0] * n
        ingest = VideoIngest(
            video_id="v",
            n_clips=n,
            object_tables={"car": ClipScoreTable("car", list(enumerate(car)))},
            action_tables={
                "jumping": ClipScoreTable("jumping", list(enumerate(jump))),
                "waving": ClipScoreTable("waving", list(enumerate(wave))),
            },
            object_sequences={"car": IntervalSet([(0, n - 1)])},
            action_sequences={
                "jumping": IntervalSet([(0, 5), (8, 11)]),
                "waving": IntervalSet([(2, 9)]),
            },
        )
        repo = VideoRepository()
        repo.add(ingest)
        return repo

    def test_pq_is_intersection_of_all_actions(self):
        repo = self._two_action_repo()
        query = Query(objects=["car"], actions=["jumping", "waving"])
        p_q = RVAQ(repo).result_sequences(query)
        assert p_q.as_tuples() == [(2, 5), (8, 9)]

    def test_top_k_runs_and_is_exact_at_max(self):
        repo = self._two_action_repo()
        query = Query(objects=["car"], actions=["jumping", "waving"])
        result = RVAQ(repo).top_k(query, k=5)
        assert len(result.ranked) == 2
        assert all(r.exact for r in result.ranked)
        # scores come from g(action1, [action2, car]) aggregated over clips
        scoring = PaperScoring()
        jump = repo.table("jumping")
        wave = repo.table("waving")
        car = repo.table("car")
        for ranked in result.ranked:
            expected = scoring.aggregate(
                scoring.clip_score(
                    jump.random_access(cid),
                    [wave.random_access(cid), car.random_access(cid)],
                )
                for cid in ranked.interval
            )
            assert ranked.score == pytest.approx(expected)

    def test_no_action_rejected(self):
        repo = self._two_action_repo()
        with pytest.raises(QueryError):
            RVAQ(repo).result_sequences(Query(objects=["car"]))
