"""The query model and its footnote 2–4 extensions."""

from __future__ import annotations

import pytest

from repro.core.query import CompoundQuery, Query
from repro.errors import QueryError


class TestQuery:
    def test_canonical_form(self):
        q = Query(objects=["car", "person"], action="jumping")
        assert q.action == "jumping"
        assert q.objects == ("car", "person")
        assert q.n_predicates == 3
        assert q.all_labels == ("car", "person", "jumping")

    def test_describe(self):
        q = Query(objects=["car"], action="jumping")
        assert q.describe() == "q:{a=jumping; o1=car}"

    def test_object_only_query(self):
        q = Query(objects=["car"])
        assert q.actions == ()
        with pytest.raises(QueryError):
            _ = q.action

    def test_action_only_query(self):
        q = Query(action="jumping")
        assert q.objects == ()
        assert q.action == "jumping"

    def test_multiple_actions_extension(self):
        q = Query(objects=["car"], actions=["jumping", "waving"])
        assert q.actions == ("jumping", "waving")
        with pytest.raises(QueryError):
            _ = q.action  # ambiguous

    def test_relationships_extension(self):
        q = Query(objects=["car"], action="jumping",
                  relationships=["person_left_of_car"])
        assert "person_left_of_car" in q.frame_level_labels

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query()

    def test_duplicates_rejected(self):
        with pytest.raises(QueryError):
            Query(objects=["car", "car"], action="jumping")

    def test_with_objects(self):
        q = Query(objects=["car"], action="jumping")
        q2 = q.with_objects(["person", "car"])
        assert q2.objects == ("person", "car")
        assert q2.action == "jumping"

    def test_vocabulary_validation(self):
        q = Query(objects=["car"], action="jumping")
        q.validate_against(frozenset({"car"}), frozenset({"jumping"}))
        with pytest.raises(QueryError):
            q.validate_against(frozenset({"bus"}), frozenset({"jumping"}))
        with pytest.raises(QueryError):
            q.validate_against(frozenset({"car"}), frozenset({"waving"}))
        q.validate_against(None, None)  # open vocabularies


class TestCompoundQuery:
    def test_conjunction(self):
        a, b = Query(action="x"), Query(action="y")
        cq = CompoundQuery.conjunction([a, b])
        assert len(cq.clauses) == 2
        assert cq.describe() == "(q:{a=x}) AND (q:{a=y})"

    def test_disjunction(self):
        a, b = Query(action="x"), Query(action="y")
        cq = CompoundQuery.disjunction([a, b])
        assert len(cq.clauses) == 1
        assert "OR" in cq.describe()

    def test_all_labels_deduplicated(self):
        a = Query(objects=["car"], action="x")
        b = Query(objects=["car"], action="y")
        cq = CompoundQuery.disjunction([a, b])
        assert cq.all_labels == ("car", "x", "y")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            CompoundQuery(())
        with pytest.raises(QueryError):
            CompoundQuery(((),))
