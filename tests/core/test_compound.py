"""Compound (CNF) query execution — footnotes 3–4 end to end."""

from __future__ import annotations

import pytest

from repro.core.compound import CompoundOnline
from repro.core.config import OnlineConfig
from repro.core.engine import OnlineEngine
from repro.core.query import CompoundQuery, Query
from repro.core.svaqd import SVAQD
from repro.errors import QueryError
from repro.eval.metrics import match_sequences
from repro.sql import parse, plan
from repro.video.synthesis import SceneSpec, TrackSpec, synthesize_video


def two_action_video(seed: int = 5):
    """A scene with two disjoint actions plus a shared object."""
    spec = SceneSpec(
        video_id=f"compound-{seed}",
        duration_s=400.0,
        tracks=(
            TrackSpec(label="jumping", kind="action",
                      occupancy=0.15, mean_duration_s=15.0),
            TrackSpec(label="waving", kind="action",
                      occupancy=0.15, mean_duration_s=15.0),
            TrackSpec(label="person", kind="object", occupancy=0.6,
                      mean_duration_s=40.0),
        ),
    )
    return synthesize_video(spec, seed=seed)


VIDEO = two_action_video()


class TestDisjunction:
    def test_or_covers_union_of_actions(self, zoo):
        compound = CompoundQuery.disjunction(
            [Query(action="jumping"), Query(action="waving")]
        )
        result = CompoundOnline(zoo, compound, OnlineConfig()).run(VIDEO)
        geometry = VIDEO.meta.geometry
        truth = geometry.frame_set_to_clips(
            VIDEO.truth.action_frames("jumping").union(
                VIDEO.truth.action_frames("waving")
            )
        )
        assert match_sequences(result.sequences, truth).f1 >= 0.6

    def test_or_superset_of_each_branch(self, zoo):
        compound = CompoundQuery.disjunction(
            [Query(action="jumping"), Query(action="waving")]
        )
        config = OnlineConfig()
        union = CompoundOnline(zoo, compound, config).run(VIDEO).sequences
        for action in ("jumping", "waving"):
            single = SVAQD(zoo, Query(action=action), config).run(VIDEO)
            covered = single.sequences.intersect(union)
            assert covered.total_length >= int(
                0.85 * single.sequences.total_length
            )


class TestConjunctionEquivalence:
    def test_single_literal_matches_svaqd(self, zoo):
        query = Query(objects=["person"], action="jumping")
        compound = CompoundQuery.conjunction([query])
        config = OnlineConfig()
        compound_result = CompoundOnline(zoo, compound, config).run(VIDEO)
        direct = SVAQD(zoo, query, config).run(VIDEO)
        assert compound_result.sequences.iou(direct.sequences) >= 0.9

    def test_multi_action_conjunction_subset_of_each(self, zoo):
        compound = CompoundQuery.conjunction(
            [Query(action="jumping"), Query(action="waving")]
        )
        result = CompoundOnline(zoo, compound, OnlineConfig()).run(VIDEO)
        config = OnlineConfig()
        for action in ("jumping", "waving"):
            single = SVAQD(zoo, Query(action=action), config).run(VIDEO)
            stray = result.sequences.difference(single.sequences)
            assert stray.total_length <= max(
                2, int(0.1 * max(1, result.sequences.total_length))
            )


class TestMechanics:
    def test_clause_short_circuit_marks_none(self, zoo):
        compound = CompoundQuery.conjunction(
            [Query(action="jumping"), Query(action="waving")]
        )
        result = CompoundOnline(zoo, compound, OnlineConfig()).run(VIDEO)
        short_circuited = [
            ev for ev in result.evaluations if ev.clause_values[1] is None
        ]
        # at least one clip failed the first clause and skipped the second
        assert short_circuited
        for ev in short_circuited:
            assert not ev.positive

    def test_shared_label_counted_once(self, zoo):
        compound = CompoundQuery.disjunction(
            [
                Query(objects=["person"], action="jumping"),
                Query(objects=["person"], action="waving"),
            ]
        )
        result = CompoundOnline(zoo, compound, OnlineConfig()).run(
            VIDEO, short_circuit=False
        )
        for ev in result.evaluations:
            # person appears once in the outcome map despite two literals
            assert list(ev.outcomes).count("person") == 1

    def test_static_mode(self, zoo):
        compound = CompoundQuery.disjunction(
            [Query(action="jumping"), Query(action="waving")]
        )
        result = CompoundOnline(
            zoo, compound, OnlineConfig().with_p0(1e-2), dynamic=False
        ).run(VIDEO)
        assert result.final_rates == {}
        assert result.evaluations

    def test_label_kind_conflict_rejected(self, zoo):
        compound = CompoundQuery.disjunction(
            [Query(action="person"), Query(objects=["person"])]
        )
        with pytest.raises(QueryError):
            CompoundOnline(zoo, compound, OnlineConfig()).run(VIDEO)


class TestSqlIntegration:
    def test_or_query_executes_through_plan(self, zoo):
        statement = parse(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, "
            "act USING ActionRecognizer) "
            "WHERE act='jumping' OR act='waving'"
        )
        compiled = plan(statement)
        assert compiled.compound is not None
        result = compiled.execute_online(OnlineEngine(zoo=zoo), VIDEO)
        assert result.video_id == VIDEO.video_id
        direct = OnlineEngine(zoo=zoo).run_compound(compiled.compound, VIDEO)
        assert result.sequences == direct.sequences
