"""Critical values for scan statistics — the paper's Eq. 5.

``critical_value(p, w, n, alpha)`` returns the smallest quota ``k_crit``
such that ``P(S_w(N) >= k_crit | p, w, L) <= alpha``: seeing at least
``k_crit`` positive predictions inside one window of ``w`` occurrence units
is *statistically significant* at level ``alpha`` under the background
probability ``p``, and the clip is declared to contain the predicate
(Eqs. 1–2).

SVAQD recomputes critical values every time its background-probability
estimates move (Algorithm 3, line 9), so the search is memoised both through
an ``lru_cache`` on exact arguments and through :class:`CriticalValueTable`,
which additionally quantises the probability axis so that microscopic
estimator jitter does not defeat the cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from typing import Sequence

import numpy as np

from repro.errors import ScanStatisticsError
from repro.scanstats.naus import naus_scan_tail
from repro.utils.validation import require_positive_int, require_probability


@lru_cache(maxsize=65536)
def _critical_value_cached(p: float, w: int, n: int, alpha: float) -> int:
    # P(S_w(N) >= k) is non-increasing in k, so binary search applies.
    lo, hi = 1, w + 1  # hi = w + 1 encodes "no k <= w is significant".
    while lo < hi:
        mid = (lo + hi) // 2
        if naus_scan_tail(mid, w, n, p) <= alpha:
            hi = mid
        else:
            lo = mid + 1
    return lo


def critical_value(
    p: float,
    w: int,
    n: int,
    alpha: float = 0.05,
    *,
    cap_at_window: bool = True,
) -> int:
    """Smallest ``k`` with ``P(S_w(N) >= k | p, w, N/w) <= alpha`` (Eq. 5).

    When no ``k <= w`` reaches significance (very large backgrounds), the
    honest answer is ``w + 1`` — the predicate can never fire.  By default
    we cap at ``w`` so a clip whose *every* occurrence unit is positive is
    always accepted; pass ``cap_at_window=False`` for the uncapped value.
    """
    p = require_probability(p, "background probability p")
    w = require_positive_int(w, "window size w")
    n = require_positive_int(n, "horizon N")
    alpha = require_probability(alpha, "significance level alpha")
    if alpha <= 0.0:
        raise ScanStatisticsError("alpha must be > 0 for a finite quota")
    # Exact degenerate-probability branches on purpose (not tolerance).
    if p == 0.0:  # reprolint: disable=RL005
        return 1  # any event at all is significant
    if p == 1.0:  # reprolint: disable=RL005
        return w + (0 if cap_at_window else 1)
    k = _critical_value_cached(float(p), int(w), int(n), float(alpha))
    if cap_at_window:
        k = min(k, w)
    return k


@dataclass
class CriticalValueTable:
    """Quantised memo of critical values for one predicate.

    SVAQD updates its background-probability estimate after every positive
    clip; successive estimates differ by tiny amounts that would all miss an
    exact-argument cache.  This table rounds ``log10(p)`` to
    ``resolution``-sized buckets first — within a bucket the critical value
    is constant for all practical purposes — and only then consults the
    shared cache.

    Attributes mirror Eq. 5: window ``w`` (occurrence units per clip),
    horizon ``n`` (total OUs the scan spans) and ``alpha``.
    """

    w: int
    n: int
    alpha: float = 0.05
    resolution: float = 0.05
    cap_at_window: bool = True
    p_floor: float = 1e-9
    #: Optional bursty-noise prior (footnote 7): when > 1, quotas come from
    #: the Markov-corrected computation instead of the i.i.d. Eq. 5 —
    #: exact FMCE for small windows, declumping for large ones.  See
    #: :func:`repro.scanstats.markov.adjusted_critical_value`.
    burstiness: float | None = None
    _memo: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        require_positive_int(self.w, "w")
        require_positive_int(self.n, "n")
        require_probability(self.alpha, "alpha")
        if self.resolution <= 0:
            raise ScanStatisticsError("resolution must be positive")

    def bucket_of(self, p: float) -> int:
        """The quantised-probability bucket ``p`` falls into."""
        p = min(1.0, max(self.p_floor, float(p)))
        return int(round(math.log10(p) / self.resolution))

    def buckets_of(self, ps: "np.ndarray | Sequence[float]") -> np.ndarray:
        """Vectorised :meth:`bucket_of` over an array of probabilities.

        One ``np.log10``/``np.rint`` pass over the whole probability axis
        — both round half-to-even exactly like the scalar path, so the
        buckets are identical element for element.
        """
        clipped = np.clip(np.asarray(ps, dtype=float), self.p_floor, 1.0)
        return np.rint(np.log10(clipped) / self.resolution).astype(np.int64)

    def bucket_bounds(self, bucket: int) -> tuple[float, float]:
        """Open probability interval guaranteed to quantise to ``bucket``.

        Returns ``(lo, hi)`` such that every ``p`` with ``lo < p < hi``
        satisfies ``bucket_of(p) == bucket``: the incremental refresh
        skips the ``log10``/rounding pass entirely while an estimate stays
        strictly inside its last bucket.  The bounds shave a ``1e-12``
        relative margin off the exact half-bucket edges — orders of
        magnitude wider than ``log10``'s rounding error, so the guarantee
        is airtight, while the margin itself is far below the quantisation
        the table already applies.  Buckets whose edges touch the clamp
        region (``p_floor`` / ``1.0``) return the empty interval
        ``(inf, -inf)`` so callers always recompute there.
        """
        lo = 10.0 ** ((bucket - 0.5) * self.resolution) * (1.0 + 1e-12)
        hi = 10.0 ** ((bucket + 0.5) * self.resolution) * (1.0 - 1e-12)
        if lo <= self.p_floor or hi >= 1.0 or not lo < hi:
            return (math.inf, -math.inf)
        return (lo, hi)

    def lookup_bucket(self, bucket: int) -> int:
        """Critical value for one quantised bucket (memoised)."""
        hit = self._memo.get(bucket)
        if hit is not None:
            return hit
        p_bucket = min(1.0, 10.0 ** (bucket * self.resolution))
        if self.burstiness is not None and self.burstiness > 1.0:
            from repro.scanstats.markov import adjusted_critical_value

            value = adjusted_critical_value(
                p_bucket, self.w, self.n, self.alpha, self.burstiness,
                cap_at_window=self.cap_at_window,
            )
        else:
            value = critical_value(
                p_bucket, self.w, self.n, self.alpha,
                cap_at_window=self.cap_at_window,
            )
        self._memo[bucket] = value
        return value

    def lookup(self, p: float) -> int:
        """Critical value for background probability ``p`` (quantised)."""
        return self.lookup_bucket(self.bucket_of(p))

    def lookup_many(self, ps: "np.ndarray | Sequence[float]") -> np.ndarray:
        """Critical values for a whole vector of probabilities.

        SVAQD refreshes every predicate's quota after every clip; this
        routes the refresh through one vectorised pass over the quantised
        probability axis, then resolves only the (few) distinct buckets
        through the memo.  Identical to ``[lookup(p) for p in ps]``.
        """
        buckets = self.buckets_of(ps)
        distinct = {int(b): self.lookup_bucket(int(b)) for b in np.unique(buckets)}
        return np.array([distinct[int(b)] for b in buckets], dtype=np.int64)
