"""Clip predicates — the second axis of the unified streaming session.

A :class:`repro.core.session.StreamSession` evaluates *some* per-clip
predicate against the current quotas; what that predicate is distinguishes
the canonical conjunctive query (Algorithm 2 via
:class:`ConjunctivePredicate`) from the footnote-3/4 CNF extension
(:class:`CnfPredicate`).  Each adapter knows how to

* evaluate one clip against a quota map (charging model invocations to the
  session's :class:`~repro.core.context.ExecutionContext`),
* expose its per-clip outcomes as a label → outcome mapping (for quota
  updates and probe statistics),
* serialise a pending evaluation for checkpoints, and
* build the run's final result object.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.config import OnlineConfig
from repro.core.context import ExecutionContext, ExecutionStats
from repro.core.indicators import (
    ClipEvaluation,
    ClipEvaluator,
    PredicateOutcome,
    resolve_giveup,
)
from repro.core.optimizer import resolved_chunk_clips
from repro.core.query import CompoundQuery, Query
from repro.core.results import CompoundEvaluation, CompoundResult, OnlineResult
from repro.detectors.cache import DetectionScoreCache
from repro.detectors.retry import ensure_finite, invoke_with_retry
from repro.detectors.zoo import ModelZoo
from repro.errors import ModelGaveUpError, QueryError
from repro.utils.intervals import IntervalSet
from repro.video.synthesis import LabeledVideo
from repro._typing import StateDict


def _outcome_to_dict(outcome: PredicateOutcome) -> StateDict:
    state = {
        "label": outcome.label,
        "kind": outcome.kind,
        "evaluated": outcome.evaluated,
        "count": outcome.count,
        "units": outcome.units,
        "indicator": outcome.indicator,
    }
    if outcome.degraded:
        state["degraded"] = True
    return state


def _outcome_from_dict(state: StateDict) -> PredicateOutcome:
    return PredicateOutcome(
        label=state["label"],
        kind=state["kind"],
        evaluated=state["evaluated"],
        count=state["count"],
        units=state["units"],
        indicator=state["indicator"],
        degraded=state.get("degraded", False),
    )


class ConjunctivePredicate:
    """Algorithm 2 over a canonical conjunctive query."""

    supports_ordering = True
    #: Whole cache chunks can be evaluated in one vectorised pass when the
    #: quotas are frozen for the block (the session checks its policy).
    supports_chunking = True

    def __init__(
        self,
        zoo: ModelZoo,
        query: Query,
        video: LabeledVideo,
        config: OnlineConfig,
        cache: DetectionScoreCache | None = None,
    ) -> None:
        self._query = query
        self._evaluator = ClipEvaluator(
            zoo, video.meta, video.truth, query, config, cache=cache
        )

    @property
    def query(self) -> Query:
        return self._query

    @property
    def cache(self) -> DetectionScoreCache | None:
        """The detection score cache in use (None = serial reference)."""
        return self._evaluator.cache

    @property
    def labels(self) -> tuple[str, ...]:
        """All predicate labels, in the user's evaluation order."""
        return (*self._query.frame_level_labels, *self._query.actions)

    @property
    def frame_labels(self) -> tuple[str, ...]:
        return self._query.frame_level_labels

    @property
    def action_labels(self) -> tuple[str, ...]:
        return self._query.actions

    def attach_context(self, context: ExecutionContext) -> None:
        self._evaluator.context = context

    def evaluate(
        self,
        clip_id: int,
        quotas: Mapping[str, int],
        *,
        short_circuit: bool,
        order: Sequence[str] | None = None,
    ) -> ClipEvaluation:
        return self._evaluator.evaluate(
            clip_id, quotas, short_circuit=short_circuit, order=order
        )

    def evaluate_chunk(
        self,
        start: int,
        quotas: Mapping[str, int],
        *,
        short_circuit: bool,
        order: Sequence[str] | None = None,
        probe_every: int = 0,
        probe_offset: int = 0,
    ) -> tuple[list[ClipEvaluation], list[tuple[int, int, int, int, int]]]:
        """Vectorised Algorithm 2 over ``start``'s whole cache chunk (see
        :meth:`repro.core.indicators.ClipEvaluator.evaluate_chunk`)."""
        return self._evaluator.evaluate_chunk(
            start, quotas, short_circuit=short_circuit,
            order=order, probe_every=probe_every, probe_offset=probe_offset,
        )

    def reconcile_chunk(self, first_unconsumed: int) -> None:
        """Refund prepaid charges for unconsumed buffer rows (see
        :meth:`repro.core.indicators.ClipEvaluator.reconcile_chunk`)."""
        self._evaluator.reconcile_chunk(first_unconsumed)

    @property
    def chunk_clips(self) -> int:
        """The resolved chunk grain (= the adaptive-order epoch length)."""
        return self._evaluator.chunk_clips

    def unit_cost_ms(self, label: str) -> float:
        """Expected fresh model cost of one clip evaluation of ``label``."""
        return self._evaluator.unit_cost_ms(label)

    def outcome_map(
        self, evaluation: ClipEvaluation
    ) -> Mapping[str, PredicateOutcome]:
        return {o.label: o for o in evaluation.outcomes}

    def held_state(self) -> StateDict:
        """Hold-last-estimate memory, for checkpoints."""
        return self._evaluator.held_state()

    def load_held_state(self, state: Mapping) -> None:
        self._evaluator.load_held_state(state)

    # -- checkpoint serialisation ----------------------------------------------

    def evaluation_to_dict(self, evaluation: ClipEvaluation) -> StateDict:
        return {
            "clip_id": evaluation.clip_id,
            "positive": evaluation.positive,
            "outcomes": [_outcome_to_dict(o) for o in evaluation.outcomes],
        }

    def evaluation_from_dict(self, state: StateDict) -> ClipEvaluation:
        return ClipEvaluation(
            clip_id=state["clip_id"],
            positive=state["positive"],
            outcomes=tuple(_outcome_from_dict(o) for o in state["outcomes"]),
        )

    # -- result construction -----------------------------------------------------

    def build_result(
        self,
        video_id: str,
        sequences: IntervalSet,
        evaluations: tuple[ClipEvaluation, ...],
        final_rates: Mapping[str, float],
        k_crit_trace: tuple[Mapping[str, int], ...],
        stats: ExecutionStats | None,
        degraded_clips: tuple[int, ...] = (),
        selectivity: Mapping[str, float | None] | None = None,
    ) -> OnlineResult:
        return OnlineResult(
            query=self._query,
            video_id=video_id,
            sequences=sequences,
            evaluations=evaluations,
            k_crit_trace=k_crit_trace,
            final_rates=final_rates,
            stats=stats,
            degraded_clips=degraded_clips,
            selectivity=dict(selectivity) if selectivity else {},
        )


def cnf_label_kinds(compound: CompoundQuery) -> tuple[list[str], list[str]]:
    """Unique frame-level and action labels across all literals, in first
    appearance order; a label used as both kinds is rejected."""
    frame_labels: list[str] = []
    action_labels: list[str] = []
    for clause in compound.clauses:
        for literal in clause:
            for label in literal.frame_level_labels:
                if label in action_labels:
                    raise QueryError(
                        f"label {label!r} used as both object and action"
                    )
                if label not in frame_labels:
                    frame_labels.append(label)
            for label in literal.actions:
                if label in frame_labels:
                    raise QueryError(
                        f"label {label!r} used as both object and action"
                    )
                if label not in action_labels:
                    action_labels.append(label)
    return frame_labels, action_labels


class CnfPredicate:
    """Footnote-4 CNF evaluation: per-label indicators computed once,
    literals conjoin them, clauses disjoin literals, and the clip is
    positive when every clause holds.  Clause order is fixed by the query,
    so selectivity re-ordering does not apply."""

    supports_ordering = False
    #: Lazy literal evaluation makes which labels get touched clip-shape
    #: dependent; CNF stays on the per-clip path.
    supports_chunking = False

    def __init__(
        self,
        zoo: ModelZoo,
        compound: CompoundQuery,
        video: LabeledVideo,
        config: OnlineConfig,
        cache: DetectionScoreCache | None = None,
    ) -> None:
        self._zoo = zoo
        self._compound = compound
        self._meta = video.meta
        self._truth = video.truth
        self._config = config
        frame_labels, action_labels = cnf_label_kinds(compound)
        self._frame_labels = tuple(frame_labels)
        self._action_labels = tuple(action_labels)
        self._action_set = set(action_labels)
        self._context: ExecutionContext | None = None
        self._object_threshold = (
            config.object_threshold
            if config.object_threshold is not None
            else zoo.detector.threshold
        )
        self._action_threshold = (
            config.action_threshold
            if config.action_threshold is not None
            else zoo.recognizer.threshold
        )
        if cache is None and config.cache_detections:
            cache = DetectionScoreCache(
                zoo,
                video.meta,
                video.truth,
                object_threshold=self._object_threshold,
                action_threshold=self._action_threshold,
                chunk_clips=resolved_chunk_clips(
                    config, zoo, video.meta.geometry
                ),
            )
        elif cache is not None:
            cache.check_compatible(
                video.meta,
                object_threshold=self._object_threshold,
                action_threshold=self._action_threshold,
            )
        self._cache = cache
        # Fault tolerance (mirrors ClipEvaluator): disarmed = the exact
        # pre-fault-tolerance hot path.
        self._armed = config.fault_tolerant
        self._retry = config.retry_policy() if self._armed else None
        self._policy_for = dict(config.failure_policy_overrides)
        self._default_policy = config.failure_policy
        self._last_good: dict[str, PredicateOutcome] = {}

    @property
    def compound(self) -> CompoundQuery:
        return self._compound

    @property
    def cache(self) -> DetectionScoreCache | None:
        """The detection score cache in use (None = serial reference)."""
        return self._cache

    @property
    def labels(self) -> tuple[str, ...]:
        return (*self._frame_labels, *self._action_labels)

    @property
    def frame_labels(self) -> tuple[str, ...]:
        return self._frame_labels

    @property
    def action_labels(self) -> tuple[str, ...]:
        return self._action_labels

    def attach_context(self, context: ExecutionContext) -> None:
        self._context = context

    def _count(self, kind: str, label: str, clip_id: int) -> tuple[int, int]:
        """Positive predictions and occurrence units of one label on one
        clip, charged exactly as the conjunctive evaluator charges."""
        if self._cache is not None:
            count, units, fresh = self._cache.lookup(kind, label, clip_id)
            if self._context is not None:
                self._context.record_model_call(kind, cached=not fresh)
            return count, units
        if kind == "action":
            scores = self._zoo.recognizer.score_clip(
                self._meta, self._truth, label, clip_id
            )
            threshold = self._action_threshold
        else:
            scores = self._zoo.detector.score_clip(
                self._meta, self._truth, label, clip_id
            )
            threshold = self._object_threshold
        if self._armed:
            ensure_finite(scores, f"scores ({label!r}, clip {clip_id})")
        if self._context is not None:
            self._context.record_model_call(kind)
        return int(np.count_nonzero(scores >= threshold)), len(scores)

    def _robust_outcome(
        self, label: str, kind: str, clip_id: int, quota: int
    ) -> PredicateOutcome:
        """Retry-wrapped counting with degradation (mirrors
        :meth:`repro.core.indicators.ClipEvaluator.robust_outcome`)."""
        model = (
            self._zoo.recognizer.name if kind == "action"
            else self._zoo.detector.name
        )

        def on_retry(error: Exception, attempt: int) -> None:
            self._zoo.cost_meter.record_retry(model)
            if self._context is not None:
                self._context.record_retry(error)

        try:
            count, units = invoke_with_retry(
                lambda: self._count(kind, label, clip_id),
                self._retry,
                describe=f"{model} on {label!r} (clip {clip_id})",
                on_retry=on_retry,
            )
        except ModelGaveUpError as error:
            return resolve_giveup(
                label, kind, quota,
                self._policy_for.get(label, self._default_policy),
                self._last_good, error, self._context, self._zoo,
            )
        outcome = PredicateOutcome(
            label, kind, evaluated=True,
            count=count, units=units, indicator=count >= quota,
        )
        self._last_good[label] = outcome
        return outcome

    def evaluate(
        self,
        clip_id: int,
        quotas: Mapping[str, int],
        *,
        short_circuit: bool,
        order: Sequence[str] | None = None,
    ) -> CompoundEvaluation:
        outcomes: dict[str, PredicateOutcome] = {}

        def indicator(label: str) -> bool:
            memo = outcomes.get(label)
            if memo is not None:
                return memo.indicator
            kind = "action" if label in self._action_set else "object"
            if self._armed:
                outcome = self._robust_outcome(
                    label, kind, clip_id, quotas[label]
                )
            else:
                count, units = self._count(kind, label, clip_id)
                outcome = PredicateOutcome(
                    label, kind, evaluated=True,
                    count=count, units=units,
                    indicator=count >= quotas[label],
                )
            outcomes[label] = outcome
            return outcome.indicator

        clause_values: list[bool | None] = []
        positive = True
        for clause in self._compound.clauses:
            if not positive and short_circuit:
                clause_values.append(None)
                continue
            clause_true = False
            for literal in clause:
                if all(indicator(label) for label in literal.all_labels):
                    clause_true = True
                    break
            clause_values.append(clause_true)
            if not clause_true:
                positive = False
        if not short_circuit:
            # evaluate any label untouched by lazy literal evaluation
            for clause in self._compound.clauses:
                for literal in clause:
                    for label in literal.all_labels:
                        indicator(label)
        return CompoundEvaluation(
            clip_id=clip_id,
            positive=positive,
            outcomes=outcomes,
            clause_values=tuple(clause_values),
        )

    def outcome_map(
        self, evaluation: CompoundEvaluation
    ) -> Mapping[str, PredicateOutcome]:
        return evaluation.outcomes

    def held_state(self) -> StateDict:
        """Hold-last-estimate memory, for checkpoints."""
        return {
            label: [o.count, o.units]
            for label, o in self._last_good.items()
        }

    def load_held_state(self, state: Mapping) -> None:
        self._last_good = {
            label: PredicateOutcome(
                label,
                "action" if label in self._action_set else "object",
                evaluated=True, count=int(count), units=int(units),
            )
            for label, (count, units) in state.items()
        }

    # -- checkpoint serialisation ----------------------------------------------

    def evaluation_to_dict(self, evaluation: CompoundEvaluation) -> StateDict:
        return {
            "clip_id": evaluation.clip_id,
            "positive": evaluation.positive,
            "outcomes": {
                label: _outcome_to_dict(o)
                for label, o in evaluation.outcomes.items()
            },
            "clause_values": list(evaluation.clause_values),
        }

    def evaluation_from_dict(self, state: StateDict) -> CompoundEvaluation:
        return CompoundEvaluation(
            clip_id=state["clip_id"],
            positive=state["positive"],
            outcomes={
                label: _outcome_from_dict(o)
                for label, o in state["outcomes"].items()
            },
            clause_values=tuple(
                None if v is None else bool(v)
                for v in state["clause_values"]
            ),
        )

    # -- result construction -----------------------------------------------------

    def build_result(
        self,
        video_id: str,
        sequences: IntervalSet,
        evaluations: tuple[CompoundEvaluation, ...],
        final_rates: Mapping[str, float],
        k_crit_trace: tuple[Mapping[str, int], ...],
        stats: ExecutionStats | None,
        degraded_clips: tuple[int, ...] = (),
        selectivity: Mapping[str, float | None] | None = None,
    ) -> CompoundResult:
        return CompoundResult(
            compound=self._compound,
            video_id=video_id,
            sequences=sequences,
            evaluations=evaluations,
            final_rates=dict(final_rates),
            k_crit_trace=k_crit_trace,
            stats=stats,
            degraded_clips=degraded_clips,
            selectivity=dict(selectivity) if selectivity else {},
        )
