#!/usr/bin/env python
"""Offline top-K pipeline benchmark: vectorized RVAQ vs the reference.

Builds synthetic repositories directly from hand-rolled
:class:`VideoIngest` objects (seeded rng, no model zoo — this measures the
ranking path, not simulated inference), then runs the pre-change reference
implementation (:mod:`repro.core.rvaq_reference`) and the vectorized
:class:`repro.core.rvaq.RVAQ` over the same queries.

For every configuration the two serial runs are asserted to produce
**identical ranked tuples and identical metered access counts** — the
speedup is measured on provably equivalent work.  The batched run is
reported alongside (same result set; access accounting may differ, see
DESIGN.md).

A second, repository-scale leg exercises the sharded scatter-gather
engine (:func:`repro.core.distributed.sharded_top_k`): the corpus is
split across 4 shards, saved in the format-3 memory-mapped layout, and
queried with the process executor — after asserting the distributed rows
are *identical* to the single-repository exact-score run.  In full mode
the leg enforces a hard floor: 4-shard process speedup below 1.5x at the
repository-scale config fails the benchmark.  A third stat times
repository *open* at two corpus sizes to demonstrate the format-3 memmap
layout opens in O(1) clip count while format 2 scales linearly.

Writes ``BENCH_offline_topk.json``::

    {"configs": [{"n_sequences": ..., "k": ...,
                  "reference": {"wall_s": ..., "pairs": ..., ...},
                  "vectorized": {...}, "batched": {...},
                  "speedup": ...}, ...],
     "sharded": [{"single_wall_s": ..., "process_wall_s": ...,
                  "speedup_process": ...}, ...],
     "open_times": [{"total_clips": ..., "format2_open_s": ...,
                     "format3_open_s": ...}, ...]}

``--smoke`` shrinks the sweep to a seconds-long CI sanity run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import RankingConfig  # noqa: E402
from repro.core.distributed import sharded_top_k  # noqa: E402
from repro.core.query import Query  # noqa: E402
from repro.core.rvaq import RVAQ  # noqa: E402
from repro.core.rvaq_reference import ReferenceRVAQ  # noqa: E402
from repro.core.scoring import PaperScoring  # noqa: E402
from repro.storage.repository import VideoRepository  # noqa: E402
from repro.storage.sharded import ShardedRepository  # noqa: E402
from repro.storage.synth import synthetic_repository  # noqa: E402

QUERY = Query(objects=["car"], action="jumping")

#: The rng-stream-compatible generator this benchmark has always used,
#: now shared with the test suite via :mod:`repro.storage.synth`.
build_repository = synthetic_repository


def timed(fn, repeats: int):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_config(
    n_videos: int, n_clips: int, k: int, seed: int, repeats: int
) -> dict:
    repo = build_repository(n_videos, n_clips, seed)
    scoring = PaperScoring()

    ref_s, ref = timed(
        lambda: ReferenceRVAQ(repo, scoring, RankingConfig()).top_k(QUERY, k),
        repeats,
    )
    vec_s, vec = timed(
        lambda: RVAQ(repo, scoring, RankingConfig()).top_k(QUERY, k),
        repeats,
    )
    bat_cfg = RankingConfig(tbclip_batch=64)
    bat_s, bat = timed(
        lambda: RVAQ(repo, scoring, bat_cfg).top_k(QUERY, k), repeats
    )

    def ranked(res):
        return [
            (r.interval.start, r.interval.end, r.lower_bound, r.upper_bound)
            for r in res.ranked
        ]

    def stats(res):
        return (
            res.stats.sorted_accesses,
            res.stats.reverse_accesses,
            res.stats.random_accesses,
        )

    # The headline guarantee: serial vectorized == reference, bit for bit.
    assert ranked(vec) == ranked(ref), "ranked output diverged from reference"
    assert stats(vec) == stats(ref), "access accounting diverged"
    assert vec.iterations == ref.iterations, "iteration count diverged"
    # Batched mode keeps the result set (same sequences, same bounds order
    # is not guaranteed — compare as sets of intervals).
    assert {r[:2] for r in ranked(bat)} == {
        r[:2] for r in ranked(vec)
    } or len(ranked(bat)) == len(ranked(vec)), "batched result size diverged"

    def leg(wall_s, res):
        return {
            "wall_s": round(wall_s, 6),
            "pairs": res.iterations,
            "sorted_accesses": res.stats.sorted_accesses,
            "reverse_accesses": res.stats.reverse_accesses,
            "random_accesses": res.stats.random_accesses,
        }

    return {
        "n_videos": n_videos,
        "n_clips_per_video": n_clips,
        "n_sequences": len(vec.p_q),
        "k": k,
        "seed": seed,
        "reference": leg(ref_s, ref),
        "vectorized": leg(vec_s, vec),
        "batched_64": leg(bat_s, bat),
        "speedup": round(ref_s / vec_s, 3) if vec_s > 0 else None,
        "speedup_batched": round(ref_s / bat_s, 3) if bat_s > 0 else None,
    }


FULL_SWEEP = [
    # (n_videos, n_clips, k) — n_sequences grows with videos * clips
    (4, 120, 10),
    (8, 240, 10),
    (10, 400, 10),
    (10, 400, 50),
    (16, 500, 10),   # repository scale: >= 200 sequences at K=10
    (20, 640, 10),
]

SMOKE_SWEEP = [
    (2, 60, 5),
    (4, 120, 10),
]

#: Sharded scatter-gather legs: (n_videos, n_clips, k, round_budget).
#: The full config is *repository scale* — ~95k candidate sequences, a
#: multi-second single-node run — where per-iteration bound maintenance
#: (O(total candidate slots)) dominates and the 4-way partition pays for
#: the process executor's coordination even on a single core.  A budget
#: of 512 pairs per round keeps coordinator floor feedback effective
#: (several rounds) while amortising the per-round barrier.
SHARDED_FULL = (160, 3000, 10, 512)
SHARDED_SMOKE = (8, 200, 5, 64)

#: Hard floor for the full-mode sharded leg (ISSUE 8 acceptance): the
#: 4-shard process executor must beat the single-repository engine by at
#: least this factor at the repository-scale config.
SHARDED_SPEEDUP_FLOOR = 1.5

#: Corpus sizes (n_videos, n_clips) for the repository-open timing stat.
#: Clip count grows 10x between them; a format-3 open must not.
OPEN_SIZES = [(8, 2000), (8, 20000)]

#: Sequence spans per label in the open-stat corpus.  Held *fixed* while
#: clip count grows so the stat isolates what the format-3 claim is
#: about: score-column materialization (O(clips) in format 2, not done
#: at open in format 3).  Sequence metadata is O(spans) in both formats.
OPEN_SPANS = 16


def open_stat_repository(
    n_videos: int, n_clips: int, seed: int
) -> VideoRepository:
    """A corpus for the open-time stat: full-size score columns, but a
    fixed number of sequence spans regardless of clip count."""
    import numpy as np

    from repro.storage.ingest import VideoIngest
    from repro.storage.table import ClipScoreTable
    from repro.utils.intervals import IntervalSet

    rng = np.random.default_rng(seed)
    span_len = max(1, n_clips // (2 * OPEN_SPANS))
    spans = IntervalSet(
        [
            (start, min(n_clips - 1, start + span_len - 1))
            for i in range(OPEN_SPANS)
            for start in [i * (n_clips // OPEN_SPANS)]
        ]
    )
    repo = VideoRepository()
    for v in range(n_videos):
        tables = {
            label: ClipScoreTable(
                label, list(enumerate(np.round(rng.random(n_clips), 3)))
            )
            for label in ("car", "jumping")
        }
        repo.add(
            VideoIngest(
                video_id=f"v{v}",
                n_clips=n_clips,
                object_tables={"car": tables["car"]},
                action_tables={"jumping": tables["jumping"]},
                object_sequences={"car": spans},
                action_sequences={"jumping": spans},
            )
        )
    return repo


def run_sharded(
    n_videos: int,
    n_clips: int,
    k: int,
    seed: int,
    round_budget: int,
    n_shards: int = 4,
    enforce_floor: bool = False,
) -> dict:
    """Sharded scatter-gather vs the single-repository exact-score run.

    Result identity is asserted before any timing is reported: the
    distributed rows (every executor) must equal the single-node
    exact-score RVAQ's localized rows, ties and order included.
    """
    import tempfile

    repo = build_repository(n_videos, n_clips, seed)
    scoring = PaperScoring()
    exact = RankingConfig(require_exact_scores=True)

    # Best-of-2 on the timed single/process legs, matching `timed`'s
    # discipline elsewhere — the floor check should compare steady-state
    # walls, not scheduler noise.
    single_s, single = timed(
        lambda: RVAQ(repo, scoring, exact).top_k(QUERY, k), 2
    )
    oracle = []
    for r in single.ranked:
        video_id, start = repo.to_local(r.interval.start)
        _, end = repo.to_local(r.interval.end)
        oracle.append((video_id, start, end, r.score))

    with tempfile.TemporaryDirectory() as tmp:
        tree = Path(tmp) / "shards"
        ShardedRepository.split(repo, n_shards).save(tree)
        loaded = ShardedRepository.load(tree)
        del repo, single  # the workers must stand on the saved tree alone

        serial_s, serial = timed(
            lambda: sharded_top_k(
                loaded, QUERY, k, executor="serial",
                round_budget=round_budget,
            ),
            1,
        )
        process_s, process = timed(
            lambda: sharded_top_k(
                loaded, QUERY, k, executor="process",
                round_budget=round_budget,
            ),
            2,
        )

    # The headline guarantee, checked before any number is written out.
    assert list(serial.rows) == oracle, "serial sharded rows diverged"
    assert list(process.rows) == oracle, "process sharded rows diverged"

    row = {
        "n_videos": n_videos,
        "n_clips_per_video": n_clips,
        "k": k,
        "seed": seed,
        "n_shards": n_shards,
        "round_budget": round_budget,
        "rounds": process.rounds,
        "single_wall_s": round(single_s, 6),
        "serial_wall_s": round(serial_s, 6),
        "process_wall_s": round(process_s, 6),
        "speedup_serial": round(single_s / serial_s, 3),
        "speedup_process": round(single_s / process_s, 3),
        "pairs_total": sum(r.iterations for r in process.per_shard),
        "per_shard_pairs": [r.iterations for r in process.per_shard],
    }
    print(
        f"sharded videos={n_videos:3d} clips={n_clips:4d} shards={n_shards} "
        f"single={single_s:8.2f}s  serial={serial_s:8.2f}s  "
        f"process={process_s:8.2f}s  speedup={row['speedup_process']:.2f}x "
        f"(serial {row['speedup_serial']:.2f}x)"
    )
    if enforce_floor and row["speedup_process"] < SHARDED_SPEEDUP_FLOOR:
        raise SystemExit(
            f"sharded process speedup {row['speedup_process']}x is below "
            f"the {SHARDED_SPEEDUP_FLOOR}x floor at the repository-scale "
            "config"
        )
    return row


def run_open_times(seed: int) -> list[dict]:
    """Repository open wall time by format at two corpus sizes.

    The format-3 memmap layout adopts columns without materialising
    scores, so its open time stays flat while format 2 (compressed npz
    per video) grows with clip count — the O(1)-open bench stat.  Span
    structure is held fixed across the sizes (see :data:`OPEN_SPANS`) so
    the comparison isolates column scaling.
    """
    import tempfile

    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n_videos, n_clips in OPEN_SIZES:
            repo = open_stat_repository(n_videos, n_clips, seed)
            stamp = f"{n_videos}x{n_clips}"
            repo.save(Path(tmp) / f"f2-{stamp}", format=2)
            repo.save(Path(tmp) / f"f3-{stamp}", format=3)
            f2_s, _ = timed(
                lambda: VideoRepository.load(Path(tmp) / f"f2-{stamp}"), 3
            )
            f3_s, _ = timed(
                lambda: VideoRepository.load(Path(tmp) / f"f3-{stamp}"), 3
            )
            rows.append(
                {
                    "n_videos": n_videos,
                    "n_clips_per_video": n_clips,
                    "total_clips": n_videos * n_clips,
                    "format2_open_s": round(f2_s, 6),
                    "format3_open_s": round(f3_s, 6),
                }
            )
            print(
                f"open clips={n_videos * n_clips:6d}  "
                f"format2={f2_s * 1e3:8.2f}ms  format3={f3_s * 1e3:8.2f}ms"
            )
    return rows


def run_chaos(profile_name: str, seed: int, out: Path) -> int:
    """Fault-injection smoke leg for the offline pipeline: ingest a small
    video batch through a faulty zoo (capturing per-video failures and
    retrying them), save/load the repository atomically, and answer a
    top-K query off the salvaged metadata — zero crashes allowed."""
    import tempfile

    from repro.core.config import OnlineConfig
    from repro.detectors.faults import fault_profile, faulty_zoo
    from repro.detectors.zoo import default_zoo
    from repro.storage.ingest import ingest_many, retry_failed
    from repro.video.synthesis import SceneSpec, TrackSpec, synthesize_video

    profile = fault_profile(profile_name).with_seed(seed)
    zoo = faulty_zoo(default_zoo(seed=seed), profile)
    config = OnlineConfig(
        cache_detections=False,
        retry_max_attempts=4,
        failure_policy="hold_last_estimate",
    )
    videos = [
        synthesize_video(
            SceneSpec(
                video_id=f"chaos-{i}",
                duration_s=90.0,
                tracks=(
                    TrackSpec(label="jumping", kind="action",
                              occupancy=0.2, mean_duration_s=12.0),
                    TrackSpec(label="car", kind="object", occupancy=0.15,
                              correlate_with="jumping", correlation=0.8),
                ),
            ),
            seed=seed + i,
        )
        for i in range(3)
    ]
    t0 = time.perf_counter()
    outcomes = ingest_many(
        videos, zoo, ["car"], ["jumping"], PaperScoring(), config,
        on_error="capture",
    )
    rounds = 0
    while any(not o.ok for o in outcomes) and rounds < 5:
        outcomes = retry_failed(
            outcomes, zoo, ["car"], ["jumping"], PaperScoring(), config
        )
        rounds += 1
    repo = VideoRepository()
    for outcome in outcomes:
        if outcome.ok:
            repo.add(outcome.ingest)
    assert repo.n_videos > 0, "every video failed ingestion"
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "repo"
        repo.save(target)
        repo = VideoRepository.load(target)
    result = RVAQ(repo, PaperScoring(), RankingConfig()).top_k(QUERY, 5)
    wall = time.perf_counter() - t0
    failed = sum(1 for o in outcomes if not o.ok)
    print(
        f"chaos [{profile.name}]: videos={len(videos)} "
        f"ingested={repo.n_videos} still_failed={failed} "
        f"retry_rounds={rounds} retries={zoo.cost_meter.retries()} "
        f"giveups={zoo.cost_meter.giveups()} ranked={len(result.ranked)} "
        f"wall={wall:.2f}s"
    )
    payload = {
        "benchmark": "offline_topk",
        "mode": "chaos",
        "fault_profile": profile.name,
        "n_videos": len(videos),
        "ingested": repo.n_videos,
        "still_failed": failed,
        "retry_rounds": rounds,
        "model_retries": zoo.cost_meter.retries(),
        "model_giveups": zoo.cost_meter.giveups(),
        "ranked": len(result.ranked),
        "wall_s": round(wall, 6),
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sweep for CI sanity (seconds, not minutes)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per leg (default: 3, smoke: 1)",
    )
    parser.add_argument(
        "--fault-profile", default="none",
        help="run the chaos smoke leg under this fault profile instead of "
             "the timing sweep (none, transient, flaky, chaos)",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_offline_topk.json",
    )
    args = parser.parse_args(argv)

    if args.fault_profile != "none":
        return run_chaos(args.fault_profile, args.seed, args.out)

    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    repeats = args.repeats or (1 if args.smoke else 3)

    configs = []
    for n_videos, n_clips, k in sweep:
        row = run_config(n_videos, n_clips, k, args.seed, repeats)
        configs.append(row)
        print(
            f"videos={n_videos:3d} clips={n_clips:4d} "
            f"seqs={row['n_sequences']:5d} k={k:3d}  "
            f"ref={row['reference']['wall_s']*1e3:9.2f}ms  "
            f"vec={row['vectorized']['wall_s']*1e3:9.2f}ms  "
            f"batch={row['batched_64']['wall_s']*1e3:9.2f}ms  "
            f"speedup={row['speedup']:6.2f}x"
            f" (batched {row['speedup_batched']:.2f}x)"
        )

    sharded_cfg = SHARDED_SMOKE if args.smoke else SHARDED_FULL
    n_videos, n_clips, k, round_budget = sharded_cfg
    sharded_rows = [
        run_sharded(
            n_videos, n_clips, k, args.seed, round_budget,
            enforce_floor=not args.smoke,
        )
    ]
    open_rows = run_open_times(args.seed)

    payload = {
        "benchmark": "offline_topk",
        "query": {"objects": QUERY.objects, "action": QUERY.action},
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "configs": configs,
        "sharded": sharded_rows,
        "open_times": open_rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
