"""Ablation — predicate evaluation order (footnote 5)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import ablation_predicate_order

_result = None


def compute():
    global _result
    if _result is None:
        _result = ablation_predicate_order.run(
            seed=BENCH_SEED, scale=BENCH_SCALE
        )
        publish("ablation_predicate_order", _result.render())
    return _result


def test_ablation_order_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    # answers are order-invariant; cost is not
    assert all(same for _, _, same in result.rows)
    assert result.cost("selective") <= result.cost("anti")
    assert result.cost("selective") <= result.cost("user")
