"""Fleet-shared kernel rate estimation — SVAQD's analogue of the
detection-score cache.

A fleet of standing queries routinely contains duplicates: the same query
shape registered by several subscribers against one stream.  Each SVAQD
session then runs an identical kernel rate estimator (§3.3) over identical
outcomes and re-derives identical critical values — per-label estimator
and refresh cost scales with the number of *queries* even though the
*information* is shared, exactly the redundancy
:class:`~repro.detectors.cache.DetectionScoreCache` removes on the model
side.

:class:`SharedRateBook` removes it on the estimator side.  Dynamic
sessions admitted under the same *group key* (canonical query shape +
registration position — see :meth:`repro.core.scheduler.FleetRun`) share
one :class:`~repro.core.dynamics.QuotaManager` whose estimator rows live
in one fleet-wide :class:`~repro.scanstats.kernel.KernelRateBank`.  Per
clip, only the group's first-registered member (the *owner*) composes an
update; the book collects every group's arrays and folds them into the
bank in **one** vectorised Eq. 6 pass at the end of the clip
(:meth:`flush`), then refreshes quotas once per (label, clip) with the
bucket-skip fast path.  Results are bit-identical to serial execution:
duplicates observe identical outcomes, so one update stands for all, and
the end-of-clip flush preserves the serial read-then-update cadence (every
session reads quotas that reflect folds through the previous clip's
pending evaluation, never the current one).

Sharing is an optimisation with exits: a cancelled member
:meth:`~SharedQuotaPolicy.detach`\\ es onto a private manager seeded from
the shared state before it finishes (its final update must not leak into
surviving members), and :meth:`seal` flips the remaining managers to
immediate mode for the fleet's finish sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.core.config import OnlineConfig
from repro.core.dynamics import PredicateTracker, QuotaManager
from repro.core.indicators import PredicateOutcome
from repro.core.policies import QuotaPolicy
from repro.errors import ConfigurationError
from repro.scanstats.kernel import KernelRateBank
from repro.video.model import VideoGeometry
from repro._typing import StateDict

if TYPE_CHECKING:
    from repro.core.context import ExecutionContext

__all__ = ["SharedQuotaPolicy", "SharedRateBook"]

#: Bank size below which :meth:`SharedRateBook.flush` walks scalar row
#: ops instead of the vectorised bank pass.  A flush touches ~40 NumPy
#: calls regardless of width, so per-op dispatch overhead (~65us) beats
#: the ~1.5us/row scalar walk until roughly this many rows; typical
#: fleets (tens of labels) sit well under it.
_VECTOR_FLUSH_MIN_ROWS = 48


@dataclass
class _RateGroup:
    """One equivalence class of queries sharing a rate series."""

    key: object
    manager: QuotaManager
    frame_labels: tuple[str, ...]
    action_labels: tuple[str, ...]
    geometry: VideoGeometry
    config: OnlineConfig
    #: Member policies in admission order; the first is the *owner*, whose
    #: updates drive the shared estimators (the rest are no-ops — their
    #: sessions see identical outcomes by construction of the group key).
    members: "list[SharedQuotaPolicy]" = field(default_factory=list)


class SharedQuotaPolicy(QuotaPolicy):
    """A dynamic quota policy whose manager is shared across a rate group.

    Checkpoint-compatible with :class:`~repro.core.policies.DynamicQuotaPolicy`
    (same ``kind``, same payload): a session checkpointed while sharing
    restores into a private dynamic policy and vice versa — sharing is a
    runtime topology, not a state format.
    """

    dynamic = True
    kind = "dynamic"

    #: Not checkpointed (RL002): the group wiring and activity flag are
    #: runtime topology rebuilt by :meth:`SharedRateBook.admit`; ``name``
    #: rides in the fleet checkpoint's group table; the context is
    #: re-attached by the restored session.
    _CHECKPOINT_EXCLUDE = frozenset({"name", "_group", "_active", "_context"})

    def __init__(
        self, name: str, group: _RateGroup, *, active: bool
    ) -> None:
        self.name = name
        self._group: _RateGroup | None = group
        self._manager = group.manager
        self._active = active
        self._context: "ExecutionContext | None" = None

    @property
    def manager(self) -> QuotaManager:
        return self._manager

    @property
    def shared(self) -> bool:
        """Whether this policy still rides its group's shared manager."""
        return self._group is not None

    @property
    def active(self) -> bool:
        """Whether this member's updates drive the estimators."""
        return self._active

    def attach_context(self, context: "ExecutionContext") -> None:
        self._context = context
        if self._active:
            self._manager.set_context(context)

    def quotas(self) -> dict[str, int]:
        return self._manager.quotas()

    def rates(self) -> Mapping[str, float]:
        return self._manager.rates()

    def update(
        self,
        outcomes: Mapping[str, PredicateOutcome],
        *,
        positive: bool,
        in_guard_band: bool,
    ) -> None:
        if self._active:
            self._manager.update(
                outcomes, positive=positive, in_guard_band=in_guard_band
            )

    def state_dict(self) -> StateDict:
        return {"kind": self.kind, **self._manager.state_dict()}

    def load_state_dict(self, state: StateDict) -> None:
        # Every member of a restored group loads the same estimator payload
        # into the same bank rows — idempotent by construction.
        self._manager.load_state_dict(state)

    def detach(self) -> None:
        """Leave the shared rate series for a private continuation.

        Builds a private :class:`~repro.core.dynamics.QuotaManager` seeded
        from the shared state (exact float round-trip through the scalar
        interchange format) and redirects this policy at it.  From here on
        the policy updates like any solo dynamic session — which is
        precisely what a cancelled member needs before its final quota
        update, so that update cannot leak into surviving members.
        """
        group = self._group
        if group is None:
            return
        private = QuotaManager(
            group.frame_labels, group.action_labels,
            group.geometry, group.config,
        )
        private.load_state_dict(group.manager.state_dict())
        if self._context is not None:
            private.set_context(self._context)
        self._manager = private
        self._group = None
        self._active = True


class SharedRateBook:
    """Fleet-wide registry of shared rate series and their single flush.

    One :class:`~repro.scanstats.kernel.KernelRateBank` spans every
    admitted group's estimator rows; :meth:`flush` folds all pending
    per-clip updates in one vectorised pass and refreshes only the rows
    whose rate left its last quantised bucket (the same bucket-skip
    contract as :meth:`QuotaManager.refresh_all`, tracked here as NumPy
    interval columns over the whole bank).
    """

    #: Not checkpointed (RL002): the bank, tracker wiring and bucket-skip
    #: memo are rebuilt by re-admitting the fleet's sessions (whose own
    #: checkpoints carry the estimator payloads); the pending queue is
    #: empty at every checkpoint boundary (each advance step ends with a
    #: flush); the counters are process-local observability.
    _CHECKPOINT_EXCLUDE = frozenset(
        {
            "_bank",
            "_pending",
            "_row_trackers",
            "_rate_lo",
            "_rate_hi",
            "_live_rows",
            "refresh_skipped",
            "estimator_s",
            "refresh_s",
        }
    )

    def __init__(self) -> None:
        self._bank = KernelRateBank()
        self._groups: dict[object, _RateGroup] = {}
        self._members: dict[str, SharedQuotaPolicy] = {}
        self._pending: list[
            tuple[QuotaManager, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        #: Row -> tracker of the owning group (``None`` once orphaned).
        self._row_trackers: list[PredicateTracker | None] = []
        #: Bucket-skip memo over the whole bank; ``(+inf, -inf)`` forces a
        #: recompute, ``(-inf, +inf)`` (orphans) suppresses one forever.
        self._rate_lo = np.empty(0, dtype=np.float64)
        self._rate_hi = np.empty(0, dtype=np.float64)
        self._live_rows = 0
        #: Label refreshes skipped by the bucket-skip fast path.
        self.refresh_skipped = 0
        #: Wall time of the vectorised estimator folds / quota refreshes.
        self.estimator_s = 0.0
        self.refresh_s = 0.0
        #: Member name -> group key overrides installed by
        #: :meth:`load_state_dict` so re-admission reproduces the
        #: checkpointed grouping regardless of the live group-key inputs.
        self._restore_keys: dict[str, object] = {}

    # -- membership --------------------------------------------------------------

    def admit(
        self,
        group_key: object,
        name: str,
        frame_labels: Iterable[str],
        action_labels: Iterable[str],
        geometry: VideoGeometry,
        config: OnlineConfig,
    ) -> SharedQuotaPolicy:
        """Join ``name`` to the rate group of ``group_key``.

        The first member of a new key allocates the group's bank rows and
        becomes its owner; later members share the series as passive
        readers.  Callers guarantee that members of one key observe
        identical per-clip outcomes (the scheduler keys on canonical query
        shape + registration position), which is what makes one member's
        update stand for all.
        """
        if name in self._members:
            raise ConfigurationError(
                f"query {name!r} already holds a shared rate series"
            )
        key = self._restore_keys.pop(name, group_key)
        group = self._groups.get(key)
        if group is None:
            frames = tuple(frame_labels)
            actions = tuple(action_labels)
            manager = QuotaManager(
                frames, actions, geometry, config, bank=self._bank
            )
            manager.set_sink(self)
            rows = manager.bank_rows
            self._row_trackers.extend(
                manager.tracker(label) for label in manager.labels()
            )
            self._rate_lo = np.concatenate(
                [self._rate_lo, np.full(len(rows), np.inf)]
            )
            self._rate_hi = np.concatenate(
                [self._rate_hi, np.full(len(rows), -np.inf)]
            )
            self._live_rows += len(rows)
            group = _RateGroup(
                key=key, manager=manager, frame_labels=frames,
                action_labels=actions, geometry=geometry, config=config,
            )
            self._groups[key] = group
        policy = SharedQuotaPolicy(name, group, active=not group.members)
        group.members.append(policy)
        self._members[name] = policy
        return policy

    def release(self, name: str) -> None:
        """Retire one member (no-op for names the book never admitted).

        The released policy detaches onto a private manager so its
        session's finish sequence cannot touch the shared rows.  If it
        owned its group, the next member inherits ownership; if it was the
        last member, the group's rows are orphaned — never updated or
        refreshed again, though they keep their slots (the bank does not
        shrink).
        """
        policy = self._members.pop(name, None)
        if policy is None or policy._group is None:
            return
        group = policy._group
        group.members.remove(policy)
        was_active = policy.active
        policy.detach()
        if not group.members:
            for row in group.manager.bank_rows:
                self._row_trackers[row] = None
                self._rate_lo[row] = -np.inf
                self._rate_hi[row] = np.inf
            self._live_rows -= len(group.manager.bank_rows)
            del self._groups[group.key]
        elif was_active:
            heir = group.members[0]
            heir._active = True
            if heir._context is not None:
                group.manager.set_context(heir._context)

    def seal(self) -> None:
        """Flush and flip every group to immediate updates.

        Called once when the fleet finishes: each group's owner then
        applies its *final* quota update directly to the shared rows as
        its session closes (owners finish first — they registered first),
        so every later member's final rates read the completed series.
        """
        self.flush()
        for group in self._groups.values():
            group.manager.set_sink(None)

    # -- per-clip updates --------------------------------------------------------

    def enqueue(
        self,
        manager: QuotaManager,
        counts: np.ndarray,
        units: np.ndarray,
        fold: np.ndarray,
    ) -> None:
        """Collect one group's composed per-clip update (the sink hook)."""
        self._pending.append((manager, counts, units, fold))

    def flush(self) -> None:
        """Fold all pending updates and refresh the rows that moved.

        One :meth:`~repro.scanstats.kernel.KernelRateBank.apply` over the
        whole bank (groups without a pending update contribute zero-unit
        rows, which the kernel treats as inactive), one vectorised
        :meth:`~repro.scanstats.kernel.KernelRateBank.rates` pass, then a
        scalar ``log10``/table lookup only for rows outside their last
        bucket's safe interval.  Runs after every clip's session loop, so
        all sessions read pre-flush quotas — the serial cadence.
        """
        if not self._pending:
            return
        if len(self._bank) < _VECTOR_FLUSH_MIN_ROWS:
            self._flush_scalar()
            return
        start = time.perf_counter()
        n = len(self._bank)
        counts = np.zeros(n, dtype=np.int64)
        units = np.zeros(n, dtype=np.int64)
        fold = np.zeros(n, dtype=bool)
        for manager, c, u, f in self._pending:
            rows = manager.bank_rows
            span = slice(rows.start, rows.stop)
            counts[span] = c
            units[span] = u
            fold[span] = f
        self._pending.clear()
        self._bank.apply(counts, units, fold)
        mid = time.perf_counter()
        rates = self._bank.rates()
        movers = np.flatnonzero(
            (rates <= self._rate_lo) | (rates >= self._rate_hi)
        )
        for row in movers.tolist():
            tracker = self._row_trackers[row]
            if tracker is None:  # pragma: no cover - orphans never move
                continue
            rate = float(rates[row])
            bucket = tracker.table.bucket_of(rate)
            tracker.k_crit = tracker.table.lookup_bucket(bucket)
            tracker.k_bg = tracker.bg_table.lookup_bucket(bucket)
            lo, hi = tracker.table.bucket_bounds(bucket)
            self._rate_lo[row] = lo
            self._rate_hi[row] = hi
        self.refresh_skipped += self._live_rows - len(movers)
        end = time.perf_counter()
        self.estimator_s += mid - start
        self.refresh_s += end - mid

    def _flush_scalar(self) -> None:
        """The same fold + refresh through scalar row ops (small banks).

        Bit-identical to the vector path (the bank's scalar row ops and
        vectorised passes are pinned equal by the kernel property suite);
        only the dispatch overhead differs.
        """
        start = time.perf_counter()
        bank = self._bank
        # The row ops return the row's post-update rate; recording it here
        # feeds the refresh below without a second rate computation.  Rows
        # without an update this clip keep their rate, so their quotas and
        # skip intervals stand untouched.
        touched: list[tuple[int, float]] = []
        for manager, counts, units, fold in self._pending:
            row0 = manager.bank_rows.start
            for i in range(len(units)):
                total = int(units[i])
                if total == 0:
                    continue
                row = row0 + i
                if fold[i]:
                    rate = bank.observe_batch_row(row, int(counts[i]), total)
                else:
                    rate = bank.advance_row(row, total)
                touched.append((row, rate))
        self._pending.clear()
        mid = time.perf_counter()
        rate_lo = self._rate_lo
        rate_hi = self._rate_hi
        skipped = self._live_rows - len(touched)
        for row, rate in touched:
            if rate_lo[row] < rate < rate_hi[row]:
                skipped += 1
                continue
            tracker = self._row_trackers[row]
            assert tracker is not None  # orphaned rows are never enqueued
            bucket = tracker.table.bucket_of(rate)
            tracker.k_crit = tracker.table.lookup_bucket(bucket)
            tracker.k_bg = tracker.bg_table.lookup_bucket(bucket)
            lo, hi = tracker.table.bucket_bounds(bucket)
            rate_lo[row] = lo
            rate_hi[row] = hi
        self.refresh_skipped += skipped
        end = time.perf_counter()
        self.estimator_s += mid - start
        self.refresh_s += end - mid

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Live sharing/observability counters (process-local)."""
        return {
            "groups": float(len(self._groups)),
            "members": float(len(self._members)),
            "live_rows": float(self._live_rows),
            "refresh_skipped": float(self.refresh_skipped),
            "estimator_s": self.estimator_s,
            "refresh_s": self.refresh_s,
        }

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> StateDict:
        """The grouping topology, JSON-serialisable.

        Estimator payloads deliberately do *not* ride here — every
        member's session checkpoint carries the group's shared state in
        the scalar interchange format (and restores it idempotently), so
        the book only has to remember *who shared with whom*.
        """
        return {
            "groups": [
                [member.name for member in group.members]
                for group in self._groups.values()
            ],
        }

    def load_state_dict(self, state: StateDict) -> None:
        """Prime a fresh book so re-admission reproduces the grouping.

        Must run *before* the fleet re-registers its sessions: each listed
        member's next :meth:`admit` is redirected to its checkpointed
        group regardless of the group key the caller derives live (the
        live key embeds the *current* stream position, which differs from
        the original registration position).
        """
        if self._members:
            raise ConfigurationError(
                "rate-book state must be loaded into a fresh book"
            )
        self._restore_keys = {
            name: ("restored", index)
            for index, names in enumerate(state.get("groups", []))
            for name in names
        }
