"""The ingestion phase (§4.2).

Executed once per video when it enters the repository; queries are unknown
at this point, so metadata is extracted for *every* label the deployed
models support:

* **Clip score tables** — per label, the per-clip aggregate score under the
  scoring function ``h`` (Eq. 7 for objects via the tracker, Eq. 8 for
  actions via the recogniser), materialised score-ordered
  (:class:`repro.storage.table.ClipScoreTable`).
* **Individual sequences** — per label, the positive-clip runs ``P_o`` /
  ``P_a`` determined with SVAQD (Eqs. 1–2 under dynamically estimated
  background probabilities), stored as clip-id interval sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Literal, Mapping, Sequence

import numpy as np

from repro.core.config import OnlineConfig
from repro.core.query import Query
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.core.svaqd import SVAQD
from repro.detectors.cost import CostMeter
from repro.detectors.retry import ensure_finite, invoke_with_retry
from repro.detectors.zoo import ModelZoo
from repro.errors import (
    IngestBatchError,
    IngestError,
    ModelExecutionError,
    ModelGaveUpError,
)
from repro.storage.table import ClipScoreTable
from repro.utils.intervals import IntervalSet
from repro.video.model import ClipView
from repro.video.synthesis import LabeledVideo


@dataclass(frozen=True)
class VideoIngest:
    """All query-independent metadata extracted from one video."""

    video_id: str
    n_clips: int
    object_tables: Mapping[str, ClipScoreTable]
    action_tables: Mapping[str, ClipScoreTable]
    object_sequences: Mapping[str, IntervalSet]
    action_sequences: Mapping[str, IntervalSet]
    ingest_cost_ms: float = 0.0

    def table_for(self, label: str) -> ClipScoreTable:
        table = self.object_tables.get(label) or self.action_tables.get(label)
        if table is None:
            raise IngestError(
                f"label {label!r} was not ingested for video {self.video_id!r}"
            )
        return table

    def sequences_for(self, label: str) -> IntervalSet:
        spans = self.object_sequences.get(label)
        if spans is None:
            spans = self.action_sequences.get(label)
        if spans is None:
            raise IngestError(
                f"label {label!r} was not ingested for video {self.video_id!r}"
            )
        return spans

    @property
    def labels(self) -> tuple[str, ...]:
        return (*self.object_tables.keys(), *self.action_tables.keys())


def ingest_video(
    video: LabeledVideo,
    zoo: ModelZoo,
    object_labels: Sequence[str],
    action_labels: Sequence[str],
    scoring: ScoringScheme | None = None,
    config: OnlineConfig | None = None,
) -> VideoIngest:
    """Run the ingestion phase over one video (§4.2).

    ``object_labels`` / ``action_labels`` enumerate the deployed models'
    vocabularies (the paper ingests "all possible object and action
    types").  The returned :class:`VideoIngest` is immutable; re-ingesting
    with a different scoring scheme or config produces a fresh one.
    """
    scoring = scoring or PaperScoring()
    config = config or OnlineConfig()
    if len(set(object_labels)) != len(object_labels):
        raise IngestError("duplicate object labels for ingestion")
    if len(set(action_labels)) != len(action_labels):
        raise IngestError("duplicate action labels for ingestion")
    meta = video.meta
    cost_before = zoo.cost_meter.ms()
    retry = config.retry_policy() if config.fault_tolerant else None

    def _invoke(
        call: Callable[[], Any],
        model_name: str,
        describe: str,
        validate: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Model-invocation boundary: plain call when fault tolerance is
        off (bit-identical to the pre-retry code path), retried per
        ``config`` otherwise, with retries/give-ups charged to the meter."""
        if retry is None:
            return call()

        def _on_retry(error: ModelExecutionError, attempt: int) -> None:
            zoo.cost_meter.record_retry(model_name)

        try:
            return invoke_with_retry(
                call, retry, validate=validate, describe=describe,
                on_retry=_on_retry,
            )
        except ModelGaveUpError:
            zoo.cost_meter.record_giveup(model_name)
            raise

    object_tables: dict[str, ClipScoreTable] = {}
    object_sequences: dict[str, IntervalSet] = {}
    for label in object_labels:
        rows = []
        for clip_id in meta.clip_ids():
            tracked = _invoke(
                lambda cid=clip_id: zoo.tracker.tracks_in_clip(
                    meta, video.truth, label, ClipView(meta, cid)
                ),
                zoo.tracker.name,
                f"tracker on {video.video_id}/{label}/clip {clip_id}",
            )
            rows.append(
                (clip_id, scoring.object_clip_score(t.score for t in tracked))
            )
        object_tables[label] = ClipScoreTable(label, rows)
        object_sequences[label] = _label_sequences(
            video, zoo, Query(objects=[label]), config
        )

    action_tables: dict[str, ClipScoreTable] = {}
    action_sequences: dict[str, IntervalSet] = {}
    shots_per_clip = meta.geometry.shots_per_clip
    for label in action_labels:
        shot_scores = _invoke(
            lambda lbl=label: zoo.recognizer.score_video(
                meta, video.truth, lbl
            ),
            zoo.recognizer.name,
            f"recogniser on {video.video_id}/{label}",
            validate=lambda scores, lbl=label: ensure_finite(
                scores, f"recogniser scores for {lbl!r}"
            ),
        )
        usable = meta.n_clips * shots_per_clip
        per_clip = np.asarray(shot_scores[:usable]).reshape(
            meta.n_clips, shots_per_clip
        )
        rows = [
            (clip_id, scoring.action_clip_score(per_clip[clip_id]))
            for clip_id in meta.clip_ids()
        ]
        # Ingestion scans every shot once; charge the recogniser.
        zoo.cost_meter.record(
            zoo.recognizer.name, usable, zoo.recognizer.profile.ms_per_unit
        )
        action_tables[label] = ClipScoreTable(label, rows)
        action_sequences[label] = _label_sequences(
            video, zoo, Query(actions=[label]), config
        )

    return VideoIngest(
        video_id=video.video_id,
        n_clips=meta.n_clips,
        object_tables=object_tables,
        action_tables=action_tables,
        object_sequences=object_sequences,
        action_sequences=action_sequences,
        ingest_cost_ms=zoo.cost_meter.ms() - cost_before,
    )


def _label_sequences(
    video: LabeledVideo, zoo: ModelZoo, query: Query, config: OnlineConfig
) -> IntervalSet:
    """Individual sequences for one label: SVAQD over the whole video."""
    result = SVAQD(zoo, query, config).run(video)
    return result.sequences


IngestExecutor = Literal["serial", "thread", "process"]

IngestErrorPolicy = Literal["raise", "capture"]


@dataclass
class IngestOutcome:
    """Per-video result of an :func:`ingest_many` batch.

    Exactly one of ``ingest`` / ``error`` is set.  The original video
    rides along so :func:`retry_failed` can re-run failures without the
    caller re-threading inputs to outcomes.
    """

    video: LabeledVideo
    ingest: VideoIngest | None = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def video_id(self) -> str:
        return self.video.video_id


def _ingest_task(
    video: LabeledVideo,
    zoo: ModelZoo,
    object_labels: Sequence[str],
    action_labels: Sequence[str],
    scoring: ScoringScheme | None,
    config: OnlineConfig | None,
) -> "tuple[VideoIngest | None, Exception | None, CostMeter]":
    """Process-pool entry point: run one ingestion on a private (pickled)
    zoo and ship the ingest (or the failure) plus the worker-side cost
    charges back — a failed video's partial charges are real work and
    must not be dropped on the floor with the exception."""
    try:
        ingest = ingest_video(
            video, zoo, object_labels, action_labels, scoring, config
        )
    except Exception as exc:
        return None, exc, zoo.cost_meter
    return ingest, None, zoo.cost_meter


#: Per-worker zoo installed by :func:`_pool_zoo_init` — one pickled fork
#: per pool *process*, not one per submitted video.
_WORKER_ZOO: ModelZoo | None = None


def _pool_zoo_init(zoo: ModelZoo) -> None:
    """Process-pool initializer: install this worker's private zoo fork.

    Shipping the zoo once per worker (via ``initargs``) instead of once
    per submitted task keeps per-video payloads down to the video plus
    the label lists — the zoo (model profiles, caches, meter machinery)
    is by far the largest constant in the old per-task pickle.
    """
    global _WORKER_ZOO
    _WORKER_ZOO = zoo


def _ingest_task_pooled(
    video: LabeledVideo,
    object_labels: Sequence[str],
    action_labels: Sequence[str],
    scoring: ScoringScheme | None,
    config: OnlineConfig | None,
) -> "tuple[VideoIngest | None, Exception | None, CostMeter]":
    """Per-task entry point over the worker's installed zoo.

    Each task still runs on a *fresh* fork of the worker zoo (reset
    meter), so the per-task meters shipped back — and therefore the
    merged totals and per-video ``ingest_cost_ms`` — are identical to
    the old ship-a-zoo-per-task path.
    """
    if _WORKER_ZOO is None:
        raise IngestError("ingest worker pool was not initialised with a zoo")
    return _ingest_task(
        video, _WORKER_ZOO.fork(), object_labels, action_labels, scoring, config
    )


def _settle(
    outcomes: list[IngestOutcome], on_error: IngestErrorPolicy
) -> list[VideoIngest] | list[IngestOutcome]:
    """Turn a fully accounted outcome list into the caller-facing result."""
    if on_error == "capture":
        return outcomes
    failures = [o for o in outcomes if not o.ok]
    if failures:
        detail = "; ".join(
            f"{o.video_id}: {o.error}" for o in failures[:3]
        )
        if len(failures) > 3:
            detail += "; ..."
        raise IngestBatchError(
            f"{len(failures)} of {len(outcomes)} videos failed ingestion "
            f"({detail})",
            outcomes=outcomes,
        )
    return [o.ingest for o in outcomes]


def ingest_many(
    videos: Iterable[LabeledVideo],
    zoo: ModelZoo,
    object_labels: Sequence[str],
    action_labels: Sequence[str],
    scoring: ScoringScheme | None = None,
    config: OnlineConfig | None = None,
    *,
    executor: IngestExecutor = "serial",
    max_workers: int | None = None,
    on_error: IngestErrorPolicy = "raise",
) -> list[VideoIngest] | list[IngestOutcome]:
    """Run the ingestion phase over many videos, optionally in parallel.

    Ingestion is embarrassingly parallel across videos — each video's
    metadata depends only on that video and the (deterministic) models —
    so this reuses the executor pattern of
    :meth:`repro.core.engine.OnlineEngine.run_many`:

    * ``"serial"`` — one video after another on the shared zoo;
    * ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`
      over per-worker zoo forks (overlaps the NumPy portions, which
      release the GIL);
    * ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`,
      sidestepping the GIL for the pure-Python SVAQD sweeps; one zoo fork
      ships to each worker via the pool initializer, so per-video task
      payloads carry only the video and label lists (each task then runs
      on a fresh fork of the worker zoo, keeping cost accounting
      identical to the serial path).

    Every executor yields identical :class:`VideoIngest` results in the
    input order (the models are deterministic), and the parallel ones fold
    their workers' inference charges back into ``zoo.cost_meter``, so
    per-video ``ingest_cost_ms`` and the shared meter totals match the
    serial run exactly.

    Failure handling: one video's failure never discards the rest of the
    batch.  Every worker's cost charges — including a failed worker's
    partial charges — are merged back into the shared meter first; then
    ``on_error="raise"`` (the default) raises
    :class:`~repro.errors.IngestBatchError` carrying the full per-video
    :class:`IngestOutcome` list (successes included, so completed ingests
    are salvageable), while ``on_error="capture"`` returns that outcome
    list instead of raising.  With no failures, ``"raise"`` returns the
    plain :class:`VideoIngest` list exactly as before.
    """
    videos = list(videos)
    if on_error not in ("raise", "capture"):
        raise IngestError(f"unknown on_error policy {on_error!r}")
    if executor == "serial":
        outcomes = []
        for video in videos:
            try:
                ingest = ingest_video(
                    video, zoo, object_labels, action_labels, scoring, config
                )
            except Exception as exc:
                outcomes.append(IngestOutcome(video=video, error=exc))
            else:
                outcomes.append(IngestOutcome(video=video, ingest=ingest))
        return _settle(outcomes, on_error)
    if executor == "thread":
        from concurrent.futures import ThreadPoolExecutor

        forks = [zoo.fork() for _ in videos]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    ingest_video,
                    video,
                    fork,
                    object_labels,
                    action_labels,
                    scoring,
                    config,
                )
                for video, fork in zip(videos, forks)
            ]
            outcomes = []
            for video, future in zip(videos, futures):
                try:
                    ingest = future.result()
                except Exception as exc:
                    outcomes.append(IngestOutcome(video=video, error=exc))
                else:
                    outcomes.append(IngestOutcome(video=video, ingest=ingest))
        for fork in forks:
            zoo.cost_meter.merge(fork.cost_meter)
        return _settle(outcomes, on_error)
    if executor == "process":
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pool_zoo_init,
            initargs=(zoo.fork(),),
        ) as pool:
            futures = [
                pool.submit(
                    _ingest_task_pooled,
                    video,
                    object_labels,
                    action_labels,
                    scoring,
                    config,
                )
                for video in videos
            ]
            shipped = []
            for future in futures:
                try:
                    shipped.append(future.result())
                except Exception as exc:
                    # The task itself never raises; this is transport
                    # failure (unpicklable payload, dead worker) — the
                    # worker-side meter is unrecoverable then.
                    shipped.append((None, exc, None))
        outcomes = []
        for video, (ingest, error, meter) in zip(videos, shipped):
            if meter is not None:
                zoo.cost_meter.merge(meter)
            outcomes.append(
                IngestOutcome(video=video, ingest=ingest, error=error)
            )
        return _settle(outcomes, on_error)
    raise IngestError(f"unknown ingest executor {executor!r}")


def retry_failed(
    outcomes: Sequence[IngestOutcome],
    zoo: ModelZoo,
    object_labels: Sequence[str],
    action_labels: Sequence[str],
    scoring: ScoringScheme | None = None,
    config: OnlineConfig | None = None,
    *,
    executor: IngestExecutor = "serial",
    max_workers: int | None = None,
) -> list[IngestOutcome]:
    """Re-ingest only the failed videos of a captured outcome list.

    Returns a full outcome list in the original order with each failure
    replaced by its fresh outcome (which may itself be a failure again);
    successes are passed through untouched, so repeated rounds converge
    on transient faults without re-paying for completed work.
    """
    failed = [o for o in outcomes if not o.ok]
    if not failed:
        return list(outcomes)
    redone = ingest_many(
        [o.video for o in failed],
        zoo,
        object_labels,
        action_labels,
        scoring,
        config,
        executor=executor,
        max_workers=max_workers,
        on_error="capture",
    )
    by_id = {o.video_id: o for o in redone}
    return [by_id.get(o.video_id, o) for o in outcomes]
