"""Streaming sequence assembly (Eq. 4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequences import SequenceAssembler, merge_indicators
from repro.errors import VideoModelError
from repro.utils.intervals import Interval, IntervalSet


class TestAssembler:
    def test_emits_on_close(self):
        asm = SequenceAssembler()
        assert asm.push(0, True) is None
        assert asm.push(1, True) is None
        closed = asm.push(2, False)
        assert closed == Interval(0, 1)

    def test_finish_closes_open_run(self):
        asm = SequenceAssembler()
        asm.push(0, False)
        asm.push(1, True)
        assert asm.finish() == Interval(1, 1)
        assert asm.result().as_tuples() == [(1, 1)]

    def test_finish_without_run(self):
        asm = SequenceAssembler()
        asm.push(0, False)
        assert asm.finish() is None

    def test_on_emit_callback(self):
        emitted = []
        asm = SequenceAssembler(on_emit=emitted.append)
        for i, flag in enumerate([1, 1, 0, 1]):
            asm.push(i, bool(flag))
        asm.finish()
        assert emitted == [Interval(0, 1), Interval(3, 3)]

    def test_out_of_order_rejected(self):
        asm = SequenceAssembler()
        asm.push(0, True)
        with pytest.raises(VideoModelError):
            asm.push(2, True)

    def test_push_after_finish_rejected(self):
        asm = SequenceAssembler()
        asm.push(0, True)
        asm.finish()
        with pytest.raises(VideoModelError):
            asm.push(1, True)

    def test_double_finish_noop(self):
        asm = SequenceAssembler()
        asm.push(0, True)
        assert asm.finish() == Interval(0, 0)
        assert asm.finish() is None

    @given(st.lists(st.booleans(), max_size=60))
    def test_streaming_matches_batch(self, flags):
        asm = SequenceAssembler()
        for i, flag in enumerate(flags):
            asm.push(i, flag)
        asm.finish()
        assert asm.result() == merge_indicators(flags)

    @given(st.lists(st.booleans(), max_size=60))
    def test_batch_matches_intervalset(self, flags):
        assert merge_indicators(flags) == IntervalSet.from_indicator(flags)
