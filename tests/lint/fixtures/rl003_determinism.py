"""RL003 fixture — linted under a fake src/repro/core path by the tests."""

import random
import time
from datetime import datetime

import numpy as np


def bad_global_rng():
    return random.random()  # line 11: finding


def bad_np_global(n):
    return np.random.rand(n)  # line 15: finding


def bad_unseeded_ctor():
    return np.random.default_rng()  # line 19: finding


def bad_wall_clock():
    return time.time()  # line 23: finding


def bad_datetime():
    return datetime.now()  # line 27: finding


def good_seeded(seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.normal(), local.random()


def good_duration_clock():
    return time.perf_counter()
