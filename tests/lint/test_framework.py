"""Framework behaviour: pragmas, baseline round-trip, CLI, reports."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import Baseline, Finding
from repro.lint.__main__ import main
from repro.lint.pragmas import FilePragmas
from repro.lint.runner import lint_paths, lint_source

BAD_DETERMINISM = (
    "import random\n"
    "\n"
    "def f():\n"
    "    return random.random()\n"
)

FAKE_PATH = "src/repro/core/mod.py"


# -- pragmas ---------------------------------------------------------------------


def test_same_line_pragma_suppresses() -> None:
    source = BAD_DETERMINISM.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RL003",
    )
    assert lint_source(FAKE_PATH, source) == []


def test_disable_next_pragma_suppresses_following_line() -> None:
    source = BAD_DETERMINISM.replace(
        "    return random.random()",
        "    # reprolint: disable-next=RL003\n    return random.random()",
    )
    assert lint_source(FAKE_PATH, source) == []


def test_file_pragma_suppresses_everywhere() -> None:
    source = "# reprolint: disable-file=RL003\n" + BAD_DETERMINISM
    assert lint_source(FAKE_PATH, source) == []


def test_pragma_for_other_code_does_not_suppress() -> None:
    source = BAD_DETERMINISM.replace(
        "return random.random()",
        "return random.random()  # reprolint: disable=RL001",
    )
    findings = lint_source(FAKE_PATH, source)
    assert [f.code for f in findings] == ["RL003"]


def test_pragma_all_and_multiple_codes() -> None:
    assert lint_source(
        FAKE_PATH,
        BAD_DETERMINISM.replace(
            "return random.random()",
            "return random.random()  # reprolint: disable=all",
        ),
    ) == []
    pragmas = FilePragmas("x = 1  # reprolint: disable=RL001, RL005\n")
    assert pragmas.by_line[1] == {"RL001", "RL005"}


# -- baseline --------------------------------------------------------------------


def _finding(line: int = 4, context: str = "f") -> Finding:
    return Finding(
        path=FAKE_PATH, line=line, col=12, code="RL003",
        message="global-state RNG", context=context,
    )


def test_baseline_round_trip(tmp_path: Path) -> None:
    baseline = Baseline.from_findings([_finding(), _finding(line=9)])
    target = tmp_path / "baseline.json"
    baseline.save(target)
    assert Baseline.load(target) == baseline
    # Two same-fingerprint entries survive the trip as a multiset.
    assert len(Baseline.load(target)) == 2


def test_baseline_partition_is_a_multiset() -> None:
    baseline = Baseline.from_findings([_finding()])
    first, second = _finding(line=4), _finding(line=9)
    new, old = baseline.partition([first, second])
    assert old == [first]  # one budget entry consumed in order
    assert new == [second]  # the second identical fingerprint still fails


def test_baselined_run_is_clean_and_ratchets(tmp_path: Path) -> None:
    bad = tmp_path / "src" / "repro" / "core" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(BAD_DETERMINISM, encoding="utf-8")

    report = lint_paths([tmp_path / "src"])
    assert [f.code for f in report.findings] == ["RL003"]

    baseline = Baseline.from_findings(report.findings)
    grandfathered = lint_paths([tmp_path / "src"], baseline=baseline)
    assert grandfathered.ok
    assert len(grandfathered.baselined) == 1

    # A second violation in the same scope is NEW, not grandfathered.
    bad.write_text(
        BAD_DETERMINISM + "\ndef g():\n    return random.random()\n",
        encoding="utf-8",
    )
    ratcheted = lint_paths([tmp_path / "src"], baseline=baseline)
    assert not ratcheted.ok
    assert len(ratcheted.findings) == 1
    assert len(ratcheted.baselined) == 1


# -- runner / report -------------------------------------------------------------


def test_fixture_directories_are_never_scanned(tmp_path: Path) -> None:
    nested = tmp_path / "tests" / "lint" / "fixtures"
    nested.mkdir(parents=True)
    (nested / "bad.py").write_text(BAD_DETERMINISM, encoding="utf-8")
    report = lint_paths([tmp_path])
    assert report.files_checked == 0


def test_parse_error_fails_the_run(tmp_path: Path) -> None:
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    (src / "broken.py").write_text("def f(:\n", encoding="utf-8")
    report = lint_paths([tmp_path / "src"])
    assert not report.ok
    assert report.parse_errors


def test_report_counts_cover_every_rule(tmp_path: Path) -> None:
    report = lint_paths([tmp_path])
    counts = report.counts()
    assert set(counts) >= {"RL001", "RL002", "RL003", "RL004", "RL005"}
    assert all(n == 0 for n in counts.values())
    assert "RL003 | determinism | 0" in report.render_summary().replace("| R", "R")


# -- CLI -------------------------------------------------------------------------


def _write_bad_tree(tmp_path: Path) -> Path:
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(BAD_DETERMINISM, encoding="utf-8")
    return tmp_path / "src"


def test_cli_exit_codes_and_json(tmp_path: Path, capsys) -> None:
    root = _write_bad_tree(tmp_path)
    assert main([str(root)]) == 1
    capsys.readouterr()
    assert main([str(root), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["counts"]["RL003"] == 1
    assert data["findings"][0]["code"] == "RL003"


def test_cli_select_and_ignore(tmp_path: Path, capsys) -> None:
    root = _write_bad_tree(tmp_path)
    assert main([str(root), "--select", "RL001"]) == 0
    assert main([str(root), "--ignore", "RL003"]) == 0
    capsys.readouterr()


def test_cli_write_then_use_baseline(tmp_path: Path, capsys) -> None:
    root = _write_bad_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(root), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert baseline.exists()
    assert main([str(root), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main([str(root)]) == 1  # without the baseline it still fails
    capsys.readouterr()


def test_cli_list_rules_and_summary(tmp_path: Path, capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert code in out
    root = _write_bad_tree(tmp_path)
    assert main([str(root), "--summary"]) == 1
    assert "### reprolint" in capsys.readouterr().out
