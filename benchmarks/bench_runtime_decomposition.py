"""§5.2 — runtime decomposition and the end-to-end alternative."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import runtime_decomposition

_result = None


def compute():
    global _result
    if _result is None:
        _result = runtime_decomposition.run(seed=BENCH_SEED, scale=BENCH_SCALE)
        publish("runtime_decomposition", _result.render())
    return _result


def test_runtime_decomposition_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Paper: >98% of online query latency is model inference.
    assert result.decomposition.inference_share > 0.95
    # Paper: the fused end-to-end model costs >60h of fine-tuning per query
    # for <0.05 F1 gain.
    assert result.endtoend_slowdown > 10.0
    assert result.endtoend_f1 - result.svaqd_f1 <= 0.05
