"""Multi-query stream scheduling — N online queries over one video stream.

A monitoring deployment rarely watches a camera with a single query;
operators register many standing queries against the same feed.  Run
serially, each query's session re-invokes the detector and recognizer on
every clip, so model cost scales with the number of queries even though
the *stream* is shared.

The stepping core is :class:`FleetRun`: one fleet of
:class:`~repro.core.session.StreamSession` objects advancing clip-by-clip
in lockstep over one video, all attached to one shared
:class:`~repro.detectors.cache.DetectionScoreCache` — each frame/shot is
scored at most once per video regardless of how many queries ask about it.
Fleet membership is **dynamic**: :meth:`FleetRun.register` admits a new
standing query between steps (it starts observing at the current stream
position) and :meth:`FleetRun.cancel` retires one mid-stream, returning
its result over the clips it saw.  The first session to evaluate a
``(kind, label, clip)`` is charged fresh model units exactly as the serial
path would be; every other session's evaluation meters the same units as
cache hits.  Results are bit-identical to running each session alone
(sessions never observe each other — only the cache is shared, and counts
are deterministic).

:class:`MultiQueryScheduler` is the batch driver over that core —
construct with a fixed fleet, :meth:`~MultiQueryScheduler.run` per video —
and is what :meth:`repro.core.engine.OnlineEngine.run_queries` wraps.  The
streaming query service (:mod:`repro.service`) drives :class:`FleetRun`
directly, including its fleet-level checkpoint
(:meth:`FleetRun.state_dict` / :meth:`FleetRun.load_state_dict`) which
bundles every live session, its execution counters and the shared cache's
charge state for mid-stream migration.

Each session charges a private :class:`~repro.core.context.ExecutionContext`
so its result carries exact per-query stats; the privates are merged into
the caller's context afterwards, mirroring the thread-executor accounting
of :meth:`repro.core.engine.OnlineEngine.run_many`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.config import OnlineConfig
from repro.core.context import (
    STAGE_ESTIMATOR,
    STAGE_REFRESH,
    ExecutionContext,
    ExecutionStats,
)
from repro.core.optimizer import resolved_chunk_clips
from repro.core.query import CompoundQuery, Query
from repro.core.ratebook import SharedRateBook
from repro.core.session import StreamSession
from repro.detectors.cache import DetectionScoreCache
from repro.detectors.zoo import ModelZoo
from repro.errors import ConfigurationError
from repro.utils.intervals import Interval
from repro.video.model import ClipView
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo
from repro._typing import StateDict

__all__ = [
    "QuerySpec",
    "MultiQueryRun",
    "MultiQueryScheduler",
    "FleetRun",
    "as_specs",
    "spec_to_dict",
    "spec_from_dict",
]

#: Format tag of :meth:`FleetRun.state_dict` bundles.  Version 2 adds the
#: shared rate book's grouping table; version-1 bundles still load, with
#: rate sharing disabled for the restored fleet (a perf-only downgrade —
#: results are identical either way).  Version 3 records the shared
#: cache's chunk size, so a fleet built with cost-planned chunks
#: (``cache_chunk_clips=0``) resumes on the exact chunk grid it
#: checkpointed with; version-2 bundles load with the config's size.
FLEET_STATE_VERSION = 3


@dataclass(frozen=True)
class QuerySpec:
    """One standing query registered with the scheduler.

    ``algorithm`` selects the quota policy per query — ``"svaq"`` (static
    critical values, optionally pinned via ``k_crit_overrides``) or
    ``"svaqd"`` (dynamic) — so one stream can serve a mixed fleet.
    ``query`` may be a canonical conjunctive :class:`Query` or a CNF
    :class:`CompoundQuery` (footnotes 3–4).
    """

    name: str
    query: Query | CompoundQuery
    algorithm: str = "svaqd"
    k_crit_overrides: Mapping[str, int] | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("svaq", "svaqd"):
            raise ConfigurationError(
                f"unknown online algorithm {self.algorithm!r} "
                f"for query {self.name!r}"
            )
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(f"invalid query name {self.name!r}")


def as_specs(
    queries: Iterable[Any], *, algorithm: str = "svaqd"
) -> list[QuerySpec]:
    """Normalise a mixed list of specs/queries to named :class:`QuerySpec`s.

    Bare queries are wrapped with auto-assigned names ``q0, q1, ...`` (by
    input position) and the given default ``algorithm``; existing specs
    pass through untouched.  Duplicate names are rejected.
    """
    specs: list[QuerySpec] = []
    for index, item in enumerate(queries):
        if isinstance(item, QuerySpec):
            specs.append(item)
        elif isinstance(item, (Query, CompoundQuery)):
            specs.append(QuerySpec(f"q{index}", item, algorithm=algorithm))
        else:
            raise ConfigurationError(
                f"expected Query, CompoundQuery or QuerySpec; got {item!r}"
            )
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ConfigurationError(f"duplicate query names: {dupes}")
    if not specs:
        raise ConfigurationError("at least one query is required")
    return specs


# -- spec serialisation ------------------------------------------------------------
#
# Migration bundles carry the fleet's specs so a fresh process can rebuild
# every session before loading its state; queries reduce to their label
# tuples (the models/video are reconstructed by the caller, per the
# checkpoint contract).

def _query_to_dict(query: Query | CompoundQuery) -> StateDict:
    if isinstance(query, CompoundQuery):
        return {
            "type": "compound",
            "clauses": [
                [_query_to_dict(literal) for literal in clause]
                for clause in query.clauses
            ],
        }
    return {
        "type": "query",
        "objects": list(query.objects),
        "actions": list(query.actions),
        "relationships": list(query.relationships),
    }


def _query_from_dict(payload: StateDict) -> Query | CompoundQuery:
    kind = payload.get("type")
    if kind == "query":
        return Query(
            objects=payload.get("objects", ()),
            actions=payload.get("actions", ()),
            relationships=payload.get("relationships", ()),
        )
    if kind == "compound":
        clauses = tuple(
            tuple(_literal_from_dict(lit) for lit in clause)
            for clause in payload["clauses"]
        )
        return CompoundQuery(clauses)
    raise ConfigurationError(f"unknown query payload type {kind!r}")


def _literal_from_dict(payload: StateDict) -> Query:
    query = _query_from_dict(payload)
    if not isinstance(query, Query):
        raise ConfigurationError("compound clauses must hold plain queries")
    return query


def spec_to_dict(spec: QuerySpec) -> StateDict:
    """JSON-serialisable rendering of a :class:`QuerySpec`."""
    return {
        "name": spec.name,
        "algorithm": spec.algorithm,
        "k_crit_overrides": (
            dict(spec.k_crit_overrides)
            if spec.k_crit_overrides is not None
            else None
        ),
        "query": _query_to_dict(spec.query),
    }


def spec_from_dict(payload: StateDict) -> QuerySpec:
    """Rebuild a :class:`QuerySpec` from :func:`spec_to_dict` output."""
    overrides = payload.get("k_crit_overrides")
    return QuerySpec(
        name=payload["name"],
        query=_query_from_dict(payload["query"]),
        algorithm=payload.get("algorithm", "svaqd"),
        k_crit_overrides=(
            {label: int(k) for label, k in overrides.items()}
            if overrides is not None
            else None
        ),
    )


@dataclass(frozen=True)
class MultiQueryRun:
    """All registered queries' results over one video stream.

    ``results`` maps each spec's name to its
    :class:`~repro.core.results.OnlineResult` /
    :class:`~repro.core.results.CompoundResult`; every result's ``stats``
    is that query's private per-session snapshot, so fresh-vs-cached
    accounting is visible per query.
    """

    video_id: str
    results: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        return self.results[name]


class FleetRun:
    """Incremental lockstep execution of a dynamic query fleet over one
    video stream.

    One ``FleetRun`` owns the per-video execution state the batch
    :meth:`MultiQueryScheduler.run` used to keep in local variables: the
    live sessions, their private contexts, the shared detection cache and
    the stream cursor.  Feed clips through :meth:`advance`; between steps,
    :meth:`register` admits a new standing query (it starts at the current
    position) and :meth:`cancel` retires one, returning its result over
    the clips it observed.  Per clip, every session evaluates before the
    stream moves on, in registration order — charging order (who pays
    fresh model units, who meters cache hits) is deterministic, and a
    cancelled session simply stops charging (later sessions then pay fresh
    where it would have; totals per workload are unchanged).

    Query names are unique for the lifetime of the run, across live *and*
    retired queries, so results and subscriptions are unambiguous.
    """

    #: Not checkpointed (RL002).  The zoo/video/config/cache handles are
    #: reconstructed by the caller exactly as for
    #: :meth:`StreamSession.load_state_dict` (the cache's mutable charge
    #: state rides inside each session's checkpoint).  ``_sessions`` and
    #: ``_contexts`` are rebuilt by re-registering the checkpointed specs.
    #: ``_results`` holds results already *delivered* to the caller
    #: (cancelled queries) — deliberately not migrated: a migration bundle
    #: carries live state, delivered results belong to the client.
    #: ``_finished`` is process-local (a restored fleet is live by
    #: definition).  ``_rate_book`` checkpoints only its grouping table
    #: (under the ``rate_book`` key) — the shared estimator payloads ride
    #: inside each member session's own checkpoint.
    _CHECKPOINT_EXCLUDE = frozenset(
        {"_zoo", "_video", "_config", "_cache", "_sessions", "_contexts",
         "_results", "_finished", "_rate_book"}
    )

    #: The declared state machine (RL007): a fleet run is live until
    #: :meth:`finish` latches it closed, and only ``finish`` may flip the
    #: latch (idempotently — hence both source states are legal).
    _LIFECYCLE_ATTR = "_finished"
    _LIFECYCLE_TRANSITIONS = {"finish": (False, True)}

    def __init__(
        self,
        zoo: ModelZoo,
        video: LabeledVideo,
        config: OnlineConfig | None = None,
        queries: Iterable[Any] = (),
        *,
        cache: DetectionScoreCache | None = None,
        start_clip: int = 0,
    ) -> None:
        self._zoo = zoo
        self._video = video
        self._config = config or OnlineConfig()
        if cache is None and self._config.cache_detections:
            # Resolve the chunk size here (honouring the
            # ``cache_chunk_clips=0`` plan-from-measured-costs sentinel)
            # so every member session lands on the same chunk grid.
            cache = DetectionScoreCache.for_video(
                zoo, video, self._config,
                chunk_clips=resolved_chunk_clips(
                    self._config, zoo, video.meta.geometry
                ),
            )
        self._cache = cache
        # The estimator-side analogue of the detection cache: SVAQD
        # sessions with identical query shape registered at the same
        # stream position share one rate series and quota refresh.
        # Fault tolerance can degrade clips per session, breaking the
        # identical-outcomes premise, so sharing disarms with it.
        self._rate_book = (
            SharedRateBook()
            if self._config.share_rate_estimates
            and not self._config.fault_tolerant
            else None
        )
        self._sessions: dict[str, StreamSession] = {}
        self._specs: dict[str, QuerySpec] = {}
        self._contexts: dict[str, ExecutionContext] = {}
        self._results: dict[str, Any] = {}
        self._order: list[str] = []
        self._position = start_clip
        self._auto_counter = 0
        self._finished = False
        for item in queries:
            self.register(item)

    # -- introspection -----------------------------------------------------------

    @property
    def video_id(self) -> str:
        return self._video.video_id

    @property
    def position(self) -> int:
        """Clip id the next :meth:`advance` step expects."""
        return self._position

    @property
    def live(self) -> tuple[str, ...]:
        """Names of the currently-registered (non-retired) queries."""
        return tuple(self._sessions)

    def rate_book_stats(self) -> dict[str, float] | None:
        """Sharing counters of the fleet's rate book (``None`` when
        sharing is off — disabled by config or armed fault tolerance)."""
        if self._rate_book is None:
            return None
        return self._rate_book.stats()

    @property
    def specs(self) -> tuple[QuerySpec, ...]:
        """Specs of the live queries, in registration order."""
        return tuple(self._specs.values())

    def names(self) -> tuple[str, ...]:
        """Every query this run ever admitted (live and retired)."""
        return tuple(self._contexts)

    def next_auto_name(self) -> str:
        """The name the next bare-query registration would receive."""
        counter = self._auto_counter
        while f"q{counter}" in self._contexts:
            counter += 1
        return f"q{counter}"

    def spec(self, name: str) -> QuerySpec:
        """The spec of one live query."""
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(
                f"no live query named {name!r}; have {sorted(self._specs)}"
            ) from None

    def session(self, name: str) -> StreamSession:
        try:
            return self._sessions[name]
        except KeyError:
            raise ConfigurationError(
                f"no live query named {name!r}; have {sorted(self._sessions)}"
            ) from None

    def context(self, name: str) -> ExecutionContext:
        """The private execution counters of one (live or retired) query."""
        try:
            return self._contexts[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown query {name!r}; have {sorted(self._contexts)}"
            ) from None

    # -- membership --------------------------------------------------------------

    def register(
        self,
        item: Any,
        *,
        on_sequence: Callable[[Interval], None] | None = None,
    ) -> str:
        """Admit one standing query; returns its (unique) name.

        ``item`` is a :class:`QuerySpec`, or a bare :class:`Query` /
        :class:`CompoundQuery` auto-named ``q<n>`` from a monotone
        counter.  The new session starts observing at the current stream
        position — its result covers exactly the clips it saw.  A name
        already used by a live *or* retired query of this run raises
        :class:`~repro.errors.ConfigurationError` naming the duplicate.
        ``on_sequence`` subscribes to the query's result sequences as they
        close (see :meth:`StreamSession.set_emit_callback`).
        """
        if self._finished:
            raise ConfigurationError(
                "cannot register queries on a finished fleet run"
            )
        if isinstance(item, QuerySpec):
            spec = item
        elif isinstance(item, (Query, CompoundQuery)):
            while f"q{self._auto_counter}" in self._contexts:
                self._auto_counter += 1
            spec = QuerySpec(f"q{self._auto_counter}", item)
            self._auto_counter += 1
        else:
            raise ConfigurationError(
                f"expected Query, CompoundQuery or QuerySpec; got {item!r}"
            )
        if spec.name in self._contexts:
            state = "live" if spec.name in self._sessions else "retired"
            raise ConfigurationError(
                f"duplicate query name {spec.name!r} "
                f"(already {state} on this stream)"
            )
        session = self._build_session(spec)
        if on_sequence is not None:
            session.set_emit_callback(on_sequence)
        self._specs[spec.name] = spec
        self._sessions[spec.name] = session
        self._contexts[spec.name] = session.context
        self._order.append(spec.name)
        self._push_label_sharing()
        return spec.name

    def _build_session(self, spec: QuerySpec) -> StreamSession:
        dynamic = spec.algorithm == "svaqd"
        builder = (
            StreamSession.for_compound
            if isinstance(spec.query, CompoundQuery)
            else StreamSession.for_query
        )
        rate_book = self._rate_book if dynamic else None
        share_key = (
            (spec.name, self._share_group_key(spec))
            if rate_book is not None
            else None
        )
        return builder(
            self._zoo, spec.query, self._video, self._config,
            dynamic=dynamic,
            k_crit_overrides=spec.k_crit_overrides,
            context=ExecutionContext(),
            cache=self._cache,
            rate_book=rate_book,
            share_key=share_key,
        )

    def _share_group_key(self, spec: QuerySpec) -> str:
        """Rate-sharing equivalence class of one spec.

        The canonical spec payload *minus the name* (identical queries
        share regardless of what they're called), plus the registration
        position: a query admitted mid-stream has a younger estimator
        clock than one admitted at clip 0, so they must not share even
        when their shapes match.
        """
        payload = spec_to_dict(spec)
        del payload["name"]
        return f"{json.dumps(payload, sort_keys=True)}@{self._position}"

    def label_sharing(self) -> dict[str, int]:
        """Cross-query sharing degrees: label -> live queries watching it.

        This is the fleet's planning signal for the adaptive conjunct
        optimizer — a label shared by k queries costs each of them 1/k of
        its fresh inference through the detection cache, so shared labels
        rank cheaper under ``predicate_order="cost"``.
        """
        degrees: dict[str, int] = {}
        for session in self._sessions.values():
            for label in set(session.predicate_labels):
                degrees[label] = degrees.get(label, 0) + 1
        return degrees

    def _push_label_sharing(self) -> None:
        """Recompute sharing degrees and push them to every live session
        (membership just changed: a register or a cancel)."""
        degrees = self.label_sharing()
        for session in self._sessions.values():
            session.set_label_sharing(degrees)

    def cancel(self, name: str) -> Any:
        """Retire one live query and return its result so far.

        The session drains and finishes immediately: an open positive run
        is closed at the last processed clip, the final quota update runs,
        and the result covers exactly the clips the query observed.  The
        name stays reserved for the lifetime of the run.
        """
        session = self.session(name)
        if self._rate_book is not None:
            # Pending shared updates are empty between steps (every
            # advance ends with a flush); this is cheap insurance.  The
            # release detaches the query onto a private rate series so its
            # finish sequence below cannot touch surviving members.
            self._rate_book.flush()
            self._rate_book.release(name)
        session.drain()
        result = session.finish()
        self._results[name] = result
        del self._sessions[name]
        del self._specs[name]
        self._push_label_sharing()
        return result

    # -- stepping ----------------------------------------------------------------

    def advance(
        self,
        clips: Sequence[ClipView],
        *,
        short_circuit: bool = True,
    ) -> None:
        """Advance every live session over a batch of in-order clips.

        Per clip, every session evaluates before the stream moves on — the
        cache chunk a clip lands in is materialised once and hot for all N
        sessions.  Clips must continue the run's stream position; feeding
        a gap or replay is a caller bug and raises.
        """
        if self._finished:
            raise ConfigurationError("fleet run already finished")
        for clip in clips:
            if clip.clip_id != self._position:
                raise ConfigurationError(
                    f"clips must continue the stream: expected clip "
                    f"{self._position}, got {clip.clip_id}"
                )
            for session in self._sessions.values():
                session.process(clip, short_circuit=short_circuit)
            if self._rate_book is not None:
                # After every member read this clip's quotas: fold all
                # shared estimator updates in one vectorised pass — the
                # serial read-then-update cadence, paid once per group.
                self._rate_book.flush()
            self._position += 1

    def finish(
        self, *, context: ExecutionContext | None = None
    ) -> MultiQueryRun:
        """Close every live session and return all results.

        The returned :class:`MultiQueryRun` covers every query the run
        ever admitted — cancelled ones with their mid-stream results — in
        registration order.  ``context`` receives the merged counters of
        all sessions (cancelled included); per-query stats live on each
        result.
        """
        if not self._finished:
            if self._rate_book is not None:
                # Owners finish first (they registered first), so sealing
                # to immediate mode lets each group's final quota update
                # land on the shared rows before later members read their
                # final rates — exactly the serial finish sequence.
                self._rate_book.seal()
                # The book's fold/refresh wall time belongs to no single
                # query context, so itemise it on the fleet's shared cost
                # meter next to the inference charges.
                meter = self._zoo.cost_meter
                meter.record_stage(
                    STAGE_ESTIMATOR, self._rate_book.estimator_s
                )
                meter.record_stage(STAGE_REFRESH, self._rate_book.refresh_s)
            for name in list(self._sessions):
                session = self._sessions.pop(name)
                session.drain()
                self._results[name] = session.finish()
                del self._specs[name]
            self._finished = True
        if context is not None:
            for name in self._order:
                context.merge(self._contexts[name])
        return MultiQueryRun(
            video_id=self._video.video_id,
            results={name: self._results[name] for name in self._order},
        )

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> StateDict:
        """Complete live-fleet state, JSON-serialisable.

        Bundles, per live query: its spec, its session checkpoint (which
        carries the shared cache's charge bookkeeping) and its execution
        counters — everything a fresh process needs to resume the fleet
        mid-stream with result- and stats-identical output.  Results
        already delivered through :meth:`cancel` are the caller's and do
        not ride along.
        """
        if self._finished:
            raise ConfigurationError("cannot checkpoint a finished fleet run")
        return {
            "version": FLEET_STATE_VERSION,
            "video_id": self._video.video_id,
            "position": self._position,
            "auto_counter": self._auto_counter,
            "chunk_clips": (
                self._cache.chunk_clips if self._cache is not None else None
            ),
            "retired": sorted(self._results),
            "rate_book": (
                self._rate_book.state_dict()
                if self._rate_book is not None
                else None
            ),
            "specs": [spec_to_dict(self._specs[n]) for n in self._specs],
            "sessions": {
                name: session.state_dict()
                for name, session in self._sessions.items()
            },
            "contexts": {
                name: self._contexts[name].snapshot().as_dict()
                for name in self._sessions
            },
        }

    def load_state_dict(self, state: StateDict) -> "FleetRun":
        """Restore a fleet checkpoint into this (freshly-built, empty) run.

        Build the run exactly as the checkpointed one was built — same
        zoo line-up, video, config — with no queries registered, then
        load.  Sessions are re-registered from the bundled specs and each
        one resumes its own state; retired names stay reserved so a
        post-migration registration cannot collide with a delivered
        result.  Returns ``self``.
        """
        if self._sessions or self._results:
            raise ConfigurationError(
                "fleet state must be loaded into a fresh, empty run"
            )
        if state.get("video_id") != self._video.video_id:
            raise ConfigurationError(
                f"fleet checkpoint holds video {state.get('video_id')!r}, "
                f"not {self._video.video_id!r}"
            )
        version = int(state.get("version", 1))
        if not 1 <= version <= FLEET_STATE_VERSION:
            raise ConfigurationError(
                f"unsupported fleet state version {version}; this build "
                f"reads versions 1..{FLEET_STATE_VERSION}"
            )
        self._position = int(state["position"])
        self._auto_counter = int(state.get("auto_counter", 0))
        # v3 bundles pin the shared cache's chunk grid; a run whose config
        # planned a different size (e.g. the meter has observations now
        # that it lacked at first registration) must rebuild on the
        # checkpointed grid before any session attaches, or the restored
        # sessions' epoch cadence would diverge from the source fleet's.
        stored_chunk = state.get("chunk_clips")
        if (
            stored_chunk is not None
            and self._cache is not None
            and self._cache.chunk_clips != int(stored_chunk)
        ):
            self._cache = DetectionScoreCache.for_video(
                self._zoo, self._video, self._config,
                chunk_clips=int(stored_chunk),
            )
        book_state = state.get("rate_book")
        if book_state is None:
            # Version-1 bundle, or the source fleet ran unshared: restore
            # every session on a private rate series.  Perf-only downgrade.
            self._rate_book = None
        elif self._rate_book is not None:
            # Prime the grouping before re-registration so members rejoin
            # their checkpointed groups (live group keys embed the current
            # position, which differs from the original registration one).
            self._rate_book.load_state_dict(book_state)
        self._order = []
        for payload in state["specs"]:
            spec = spec_from_dict(payload)
            name = self.register(spec)
            self._sessions[name].load_state_dict(state["sessions"][name])
            self._contexts[name].load_snapshot(
                ExecutionStats.from_dict(state["contexts"][name])
            )
        # Reserve retired names without their (already-delivered) results.
        for name in state.get("retired", []):
            self._contexts.setdefault(name, ExecutionContext())
        return self


class MultiQueryScheduler:
    """Batch driver over :class:`FleetRun` for a fixed query fleet.

    Construct once per fleet; :meth:`run` per video.  Each run starts a
    fresh :class:`FleetRun` (building or accepting one
    :class:`DetectionScoreCache` for the video), streams every clip
    through it and finishes.  :meth:`start` hands out the incremental run
    itself for callers that interleave stepping with registration —
    the streaming service's path.
    """

    def __init__(
        self,
        zoo: ModelZoo,
        queries: Iterable[Any],
        config: OnlineConfig | None = None,
    ) -> None:
        self._zoo = zoo
        self._config = config or OnlineConfig()
        self._specs = as_specs(queries)

    @property
    def specs(self) -> tuple[QuerySpec, ...]:
        return tuple(self._specs)

    def start(
        self,
        video: LabeledVideo,
        *,
        cache: DetectionScoreCache | None = None,
        start_clip: int = 0,
    ) -> FleetRun:
        """An incremental :class:`FleetRun` over this scheduler's fleet."""
        return FleetRun(
            self._zoo, video, self._config, self._specs,
            cache=cache, start_clip=start_clip,
        )

    def sessions(
        self,
        video: LabeledVideo,
        *,
        cache: DetectionScoreCache | None = None,
    ) -> dict[str, StreamSession]:
        """One session per registered query, sharing one detection cache.

        When ``cache`` is omitted and ``config.cache_detections`` is on, a
        fresh per-video cache is built; with caching disabled each session
        falls back to the serial ``score_clip`` reference path.  Every
        session gets a private :class:`ExecutionContext`.
        """
        run = self.start(video, cache=cache)
        return {name: run.session(name) for name in run.live}

    def run(
        self,
        video: LabeledVideo,
        *,
        stream: ClipStream | None = None,
        short_circuit: bool = True,
        context: ExecutionContext | None = None,
        cache: DetectionScoreCache | None = None,
    ) -> MultiQueryRun:
        """Advance every query over the video's stream in lockstep.

        Per clip, every session evaluates before the stream moves on —
        the cache chunk a clip lands in is materialised once and hot for
        all N sessions.  ``context`` receives the merged counters of all
        sessions; per-query stats live on each result.
        """
        clips = stream if stream is not None else ClipStream(video.meta)
        run = self.start(video, cache=cache, start_clip=clips.position)
        while not clips.end():
            run.advance([clips.next()], short_circuit=short_circuit)
        return run.finish(context=context)
