"""The Table 1 / Table 2 dataset builders."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.video.datasets import (
    MOVIES,
    YOUTUBE_QUERY_SETS,
    action_vocabulary,
    build_movie,
    build_youtube_set,
    movie_by_title,
    object_vocabulary,
    youtube_set_by_id,
)


class TestSpecs:
    def test_twelve_query_sets(self):
        assert len(YOUTUBE_QUERY_SETS) == 12
        assert {s.qid for s in YOUTUBE_QUERY_SETS} == {
            f"q{i}" for i in range(1, 13)
        }

    def test_table1_rows_match_paper(self):
        q1 = youtube_set_by_id("q1")
        assert q1.action == "washing dishes"
        assert q1.objects == ("faucet", "oven")
        assert q1.minutes == 57
        q12 = youtube_set_by_id("q12")
        assert q12.action == "archery"
        assert q12.minutes == 156

    def test_four_movies_match_paper(self):
        assert len(MOVIES) == 4
        coffee = movie_by_title("Coffee and Cigarettes")
        assert coffee.action == "smoking"
        assert coffee.objects == ("wine glass", "cup")
        assert coffee.minutes == 96
        titanic = movie_by_title("Titanic")
        assert titanic.minutes == 194

    def test_vocabularies_cover_specs(self):
        objects = object_vocabulary()
        actions = action_vocabulary()
        for spec in YOUTUBE_QUERY_SETS:
            assert spec.action in actions
            assert set(spec.objects) <= objects
        for movie in MOVIES:
            assert movie.action in actions
            assert set(movie.objects) <= objects
        assert "person" in objects

    def test_unknown_lookups(self):
        with pytest.raises(ConfigurationError):
            youtube_set_by_id("q99")
        with pytest.raises(ConfigurationError):
            movie_by_title("Sharknado")


class TestYouTubeBuilder:
    def test_total_length_scales(self):
        spec = youtube_set_by_id("q2")  # 52 minutes at full scale
        qs = build_youtube_set(spec, seed=0, scale=0.1)
        assert qs.total_minutes == pytest.approx(5.2, rel=0.35)

    def test_videos_carry_query_labels(self):
        spec = youtube_set_by_id("q1")
        qs = build_youtube_set(spec, seed=0, scale=0.05)
        video = qs.videos[0]
        assert video.truth.action_frames(spec.action)
        for obj in spec.objects:
            assert obj in video.truth.object_labels
        assert "person" in video.truth.object_labels

    def test_deterministic(self):
        spec = youtube_set_by_id("q5")
        a = build_youtube_set(spec, seed=3, scale=0.05)
        b = build_youtube_set(spec, seed=3, scale=0.05)
        assert len(a.videos) == len(b.videos)
        assert a.videos[0].truth.action_frames(spec.action) == b.videos[
            0
        ].truth.action_frames(spec.action)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            build_youtube_set(youtube_set_by_id("q1"), scale=0.0)


class TestMovieBuilder:
    def test_duration_scales(self):
        spec = movie_by_title("Iron Man")  # 126 minutes
        video = build_movie(spec, seed=0, scale=0.1)
        assert video.meta.duration_seconds == pytest.approx(
            126 * 60 * 0.1, rel=0.01
        )

    def test_ground_truth_sequence_count_in_band(self):
        spec = movie_by_title("Coffee and Cigarettes")
        video = build_movie(spec, seed=0, scale=1.0)
        truth = video.truth.query_clips(
            spec.objects, spec.action, video.meta.geometry
        )
        # target 21 ground-truth sequences at full scale; correlation and
        # projection shave some — accept a generous band around it.
        assert 8 <= len(truth) <= 35

    def test_deterministic(self):
        spec = movie_by_title("Titanic")
        a = build_movie(spec, seed=1, scale=0.05)
        b = build_movie(spec, seed=1, scale=0.05)
        assert a.truth.action_frames(spec.action) == b.truth.action_frames(
            spec.action
        )
