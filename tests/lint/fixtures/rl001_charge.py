"""RL001 fixture — linted under a fake src/repro/core path by the tests."""

from repro.detectors.retry import RetryPolicy, invoke_with_retry


def bad_direct_invocation(zoo, meta, truth):
    return zoo.detector.score_video(meta, truth, "car")  # line 7: finding


def bad_generic_name(model, frame):
    return model.predict(frame)  # line 11: finding


def good_wrapped(zoo, meta, truth):
    return invoke_with_retry(
        lambda: zoo.detector.score_video(meta, truth, "car"),
        RetryPolicy(),
    )


def _forward(call):
    return invoke_with_retry(call, RetryPolicy())


def good_local_wrapper(zoo, meta, truth):
    return _forward(lambda: zoo.recognizer.score_shot(meta, truth, "jump", 0))


def good_pragma(zoo, meta, truth):
    return zoo.detector.score_frame(meta, truth, "car", 0)  # reprolint: disable=RL001
