"""Command-line front end: ``python -m repro.lint src tests``.

Exit codes: 0 clean (baselined/suppressed findings do not fail the run),
1 new findings or unparsable files, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.base import all_rules
from repro.lint.baseline import Baseline
from repro.lint.project import DEFAULT_LOCK_PATH
from repro.lint.runner import lint_paths, update_version_lock


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based contract checker for the repro engine",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the check pass out over N worker processes",
    )
    parser.add_argument(
        "--cache", metavar="FILE", type=Path,
        help="content-hash result cache file (skips unchanged files)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-rule wall time after the findings",
    )
    parser.add_argument(
        "--update-version-lock", action="store_true",
        help="re-record the version lock (RL008) from the current tree and exit",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="CODES", default="",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", type=Path,
        help="baseline file of grandfathered findings to subtract",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="append a per-rule markdown summary table to the output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, rule in all_rules().items():
            print(f"{code} {rule.name}: {rule.rationale}")
        return 0

    if args.update_version_lock:
        lock = update_version_lock([Path(p) for p in args.paths])
        print(
            f"recorded {len(lock.entries)} versioned class(es) "
            f"in {DEFAULT_LOCK_PATH}"
        )
        return 0

    select = (
        [c for c in args.select.split(",") if c.strip()] if args.select else None
    )
    ignore = [c for c in args.ignore.split(",") if c.strip()]

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline is not None and not args.write_baseline:
        if args.baseline.exists():
            try:
                baseline = Baseline.load(args.baseline)
            except (ValueError, KeyError, OSError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    report = lint_paths(
        [Path(p) for p in args.paths],
        select=select,
        ignore=ignore,
        baseline=baseline,
        jobs=args.jobs,
        cache_path=args.cache,
    )

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.baseline)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}",
        )
        return 0

    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    if args.summary:
        print()
        print(report.render_summary())
    if args.stats:
        print()
        print(report.render_stats())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
