"""Equivalence suite for the vectorized offline top-K path.

The vectorized RVAQ/TBClip implementation must reproduce the reference
(pair-at-a-time, per-sequence-object) implementation *bit for bit* in
serial mode — same ranked tuples, same metered access counts, same
iteration count — and must keep the same result *set* under the relaxed
modes (batched iteration, skip disabled, point-set skip backend).

Contracts being pinned down (see DESIGN.md "Offline top-K pipeline"):

* Serial (``tbclip_batch=1``) runs are bit-identical to the reference.
* Batched runs may charge extra accesses (the skip set only grows between
  batches) but return sequences whose true scores match the serial run's.
* Within the returned top-k, *membership* is guaranteed; internal order
  follows the (lower, upper) bound sort and only matches true-score order
  when ``require_exact_scores`` is set — which the reference shares.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.rvaq import RVAQ
from repro.core.rvaq_reference import ReferenceRVAQ
from repro.core.scoring import MaxScoring, PaperScoring
from repro.storage.ingest import VideoIngest
from repro.storage.repository import VideoRepository
from repro.storage.table import ClipScoreTable
from repro.utils.intervals import IntervalSet

QUERY = Query(objects=["car"], action="jumping")


def rand_repo(seed: int, n_videos: int = 4, n_clips: int = 40) -> VideoRepository:
    """A randomized multi-video repository with overlapping car/jumping
    runs; scores rounded to 3 decimals so bound ties actually occur."""
    rng = np.random.default_rng(seed)
    repo = VideoRepository()
    for v in range(n_videos):
        act_scores = np.round(rng.random(n_clips), 3)
        car_scores = np.round(rng.random(n_clips), 3)

        def spans() -> list[tuple[int, int]]:
            out, pos = [], 0
            while pos < n_clips:
                start = pos + int(rng.integers(0, 4))
                if start >= n_clips:
                    break
                end = min(n_clips - 1, start + int(rng.integers(0, 6)))
                out.append((start, end))
                pos = end + 2
            return out or [(0, n_clips - 1)]

        repo.add(
            VideoIngest(
                video_id=f"v{v}",
                n_clips=n_clips,
                object_tables={
                    "car": ClipScoreTable("car", list(enumerate(car_scores)))
                },
                action_tables={
                    "jumping": ClipScoreTable(
                        "jumping", list(enumerate(act_scores))
                    )
                },
                object_sequences={"car": IntervalSet(spans())},
                action_sequences={"jumping": IntervalSet(spans())},
            )
        )
    return repo


def true_score(repo, interval, scoring) -> float:
    act = repo.table(QUERY.action)
    objs = [repo.table(o) for o in QUERY.objects]
    return scoring.aggregate(
        scoring.clip_score(
            act.random_access(cid), [o.random_access(cid) for o in objs]
        )
        for cid in interval
    )


def score_multiset(repo, result, scoring) -> Counter:
    """The returned sequences' true scores, rounded to kill last-ulp
    fold-order noise — the mode-independent invariant."""
    return Counter(
        round(true_score(repo, r.interval, scoring), 9) for r in result.ranked
    )


def stats_tuple(result):
    s = result.stats
    return (s.sorted_accesses, s.reverse_accesses, s.random_accesses)


def ranked_tuples(result):
    return [
        (r.interval.start, r.interval.end, r.lower_bound, r.upper_bound)
        for r in result.ranked
    ]


class TestSerialBitIdentity:
    """tbclip_batch=1 must equal the reference implementation exactly."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_paper_scoring(self, seed, k):
        repo = rand_repo(seed)
        ref = ReferenceRVAQ(repo, PaperScoring(), RankingConfig()).top_k(QUERY, k)
        new = RVAQ(repo, PaperScoring(), RankingConfig()).top_k(QUERY, k)
        assert ranked_tuples(new) == ranked_tuples(ref)
        assert stats_tuple(new) == stats_tuple(ref)
        assert new.iterations == ref.iterations

    @pytest.mark.parametrize("seed", range(6))
    def test_max_scoring(self, seed):
        repo = rand_repo(seed)
        ref = ReferenceRVAQ(repo, MaxScoring(), RankingConfig()).top_k(QUERY, 5)
        new = RVAQ(repo, MaxScoring(), RankingConfig()).top_k(QUERY, 5)
        assert ranked_tuples(new) == ranked_tuples(ref)
        assert stats_tuple(new) == stats_tuple(ref)

    @pytest.mark.parametrize("seed", range(6))
    def test_require_exact_scores(self, seed):
        repo = rand_repo(seed)
        cfg = RankingConfig(require_exact_scores=True)
        ref = ReferenceRVAQ(repo, PaperScoring(), cfg).top_k(QUERY, 4)
        new = RVAQ(repo, PaperScoring(), cfg).top_k(QUERY, 4)
        assert ranked_tuples(new) == ranked_tuples(ref)
        assert stats_tuple(new) == stats_tuple(ref)
        assert new.iterations == ref.iterations

    @pytest.mark.parametrize("seed", range(4))
    def test_k_geq_candidates(self, seed):
        """k at least |P_q|: every candidate is returned, bounds exact."""
        repo = rand_repo(seed)
        ref = ReferenceRVAQ(repo, PaperScoring(), RankingConfig()).top_k(
            QUERY, 200
        )
        new = RVAQ(repo, PaperScoring(), RankingConfig()).top_k(QUERY, 200)
        assert ranked_tuples(new) == ranked_tuples(ref)
        assert stats_tuple(new) == stats_tuple(ref)
        assert len(new.ranked) == len(new.p_q)
        for r in new.ranked:
            assert r.lower_bound == r.upper_bound

    @pytest.mark.parametrize("seed", range(6))
    def test_point_skip_backend(self, seed):
        """The point-set skip backend is a drop-in for the interval one."""
        repo = rand_repo(seed)
        a = RVAQ(
            repo, PaperScoring(), RankingConfig(), skip_backend="interval"
        ).top_k(QUERY, 5)
        b = RVAQ(
            repo, PaperScoring(), RankingConfig(), skip_backend="points"
        ).top_k(QUERY, 5)
        assert ranked_tuples(a) == ranked_tuples(b)
        assert stats_tuple(a) == stats_tuple(b)
        assert a.iterations == b.iterations


class TestBatchedEquivalence:
    """Batched TBClip drains keep the ranked result; accesses may grow."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("batch", [4, 32])
    def test_same_score_multiset(self, seed, batch):
        repo = rand_repo(seed)
        scoring = PaperScoring()
        serial = RVAQ(repo, scoring, RankingConfig()).top_k(QUERY, 5)
        batched = RVAQ(
            repo, scoring, RankingConfig(tbclip_batch=batch)
        ).top_k(QUERY, 5)
        assert score_multiset(repo, batched, scoring) == score_multiset(
            repo, serial, scoring
        )
        # Access accounting legitimately differs in both directions:
        # within a batch the skip set is stale, so the iterator wastes
        # fewer sorted rounds stepping over freshly-skipped clips but
        # random-scores more of them — only the result set is invariant.

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_mode_scores(self, seed):
        """Exact mode: the decided top set's bounds equal true scores
        (up to fold-order ulps) at any batch size."""
        repo = rand_repo(seed)
        scoring = PaperScoring()
        cfg = RankingConfig(require_exact_scores=True, tbclip_batch=16)
        result = RVAQ(repo, scoring, cfg).top_k(QUERY, 4)
        for r in result.ranked:
            assert math.isclose(
                r.lower_bound,
                true_score(repo, r.interval, scoring),
                rel_tol=1e-9,
                abs_tol=1e-9,
            )

    def test_batch_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RankingConfig(tbclip_batch=0)
        with pytest.raises(ConfigurationError):
            RVAQ(rand_repo(0), PaperScoring(), skip_backend="bogus")


class TestSkipEquivalence:
    """enable_skip=False scans more but returns the same sequences."""

    @pytest.mark.parametrize("seed", range(8))
    def test_same_score_multiset(self, seed):
        repo = rand_repo(seed)
        scoring = PaperScoring()
        with_skip = RVAQ(repo, scoring, RankingConfig()).top_k(QUERY, 5)
        no_skip = RVAQ(
            repo, scoring, RankingConfig(), enable_skip=False
        ).top_k(QUERY, 5)
        assert score_multiset(repo, no_skip, scoring) == score_multiset(
            repo, with_skip, scoring
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_membership_matches_brute_force(self, seed):
        """Top-k membership (by true score, ties broken arbitrarily) is
        guaranteed even though within-top-k order is bound-driven."""
        repo = rand_repo(seed)
        scoring = PaperScoring()
        k = 5
        result = RVAQ(repo, scoring, RankingConfig()).top_k(QUERY, k)
        truth = sorted(
            (round(true_score(repo, iv, scoring), 9) for iv in result.p_q),
            reverse=True,
        )[:k]
        assert sorted(
            score_multiset(repo, result, scoring).elements(), reverse=True
        ) == truth
