"""The multi-tenant streaming query service.

:class:`QueryService` turns the batch engine into a long-running process:
operators attach video streams, tenants register standing queries against
them *while they run*, results push incrementally to subscribers the
moment sequences close, and the whole thing snapshots into one migration
bundle a fresh process resumes mid-stream.

The service is a thin asyncio shell over deterministic cores it does not
re-implement:

* per stream, a :class:`repro.core.scheduler.FleetRun` steps the query
  fleet in lockstep over one shared detection cache;
* :class:`repro.service.registry.QueryRegistry` is the book of record;
* :class:`repro.service.admission.AdmissionController` enforces
  per-tenant quotas at the registration boundary;
* :class:`repro.service.migration.ServiceState` captures everything.

Everything runs on one event loop thread: :meth:`step` advances one clip
batch synchronously, and :meth:`serve` yields control between batches
(``await asyncio.sleep(0)``), so registration, cancellation and
subscription calls interleave with stream progress without locks — and
results stay bit-identical to the batch :meth:`OnlineEngine.run_queries`
path, which the CI smoke asserts.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.config import OnlineConfig
from repro.core.context import ExecutionContext, ExecutionStats
from repro.core.scheduler import FleetRun, QuerySpec
from repro.core.query import CompoundQuery, Query
from repro.detectors.zoo import ModelZoo, default_zoo
from repro.errors import ConfigurationError
from repro.service.admission import AdmissionController
from repro.service.migration import ServiceState
from repro.service.registry import (
    QUERY_CANCELLED,
    QUERY_COMPLETED,
    QueryRegistry,
    RegisteredQuery,
)
from repro.utils.intervals import Interval
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo
from repro._typing import StateDict

__all__ = ["QueryService", "ResultEvent"]

#: Event kinds pushed to subscribers.
EVENT_SEQUENCE = "sequence"
EVENT_FINAL = "final"


@dataclass(frozen=True)
class ResultEvent:
    """One push to a query's subscribers.

    ``sequence`` events carry one closed result sequence the moment the
    assembler emits it; the single ``final`` event carries the query's
    complete result (cancelled mid-stream or run to the end) and is the
    subscriber's signal to stop reading.
    """

    stream: str
    query: str
    tenant: str
    kind: str
    interval: Interval | None = None
    result: Any = None


@dataclass
class _Stream:
    """One attached video stream and its fleet run."""

    video: LabeledVideo
    clips: ClipStream
    fleet: FleetRun
    done: bool = False
    results: dict[str, Any] = field(default_factory=dict)


class QueryService:
    """Live query registration, incremental result push, migration.

    Single-threaded by design: every public method mutates state
    synchronously, so calls made between :meth:`step` invocations (the
    awaits of :meth:`serve`) are safe without locks.  ``clip_batch``
    bounds how many clips each stream advances per step — the latency
    ceiling between a registration call and the new query observing the
    stream.
    """

    def __init__(
        self,
        zoo: ModelZoo | None = None,
        config: OnlineConfig | None = None,
        *,
        admission: AdmissionController | None = None,
        clip_batch: int = 8,
    ) -> None:
        if clip_batch < 1:
            raise ConfigurationError(
                f"clip_batch must be >= 1; got {clip_batch}"
            )
        self._zoo = zoo if zoo is not None else default_zoo()
        self._config = config or OnlineConfig()
        self._clip_batch = clip_batch
        self.registry = QueryRegistry()
        self.admission = admission or AdmissionController()
        self._streams: dict[str, _Stream] = {}
        self._subscribers: dict[
            tuple[str, str], list[asyncio.Queue[ResultEvent]]
        ] = {}
        # Fresh model units already charged to admission per live query,
        # so each step only meters the delta.
        self._charged: dict[tuple[str, str], int] = {}

    # -- streams -----------------------------------------------------------------

    def add_stream(
        self, name: str, video: LabeledVideo, *, start_clip: int = 0
    ) -> None:
        """Attach one video stream under ``name`` (no queries yet)."""
        if name in self._streams:
            raise ConfigurationError(f"stream {name!r} already attached")
        self._streams[name] = _Stream(
            video=video,
            clips=ClipStream(video.meta, start_clip=start_clip),
            fleet=FleetRun(
                self._zoo, video, self._config, start_clip=start_clip
            ),
        )

    def streams(self) -> tuple[str, ...]:
        return tuple(self._streams)

    def position(self, stream: str) -> int:
        """Clip id the stream's next step will process."""
        return self._stream(stream).fleet.position

    def done(self, stream: str) -> bool:
        """True once the stream has ended and its queries completed."""
        return self._stream(stream).done

    def live(self, stream: str) -> tuple[str, ...]:
        """Names of the stream's currently-running queries."""
        return self._stream(stream).fleet.live

    def fleets(self) -> dict[str, FleetRun]:
        """Live fleet runs by stream name (migration capture reads this)."""
        return {
            name: stream.fleet
            for name, stream in self._streams.items()
            if not stream.done
        }

    def _stream(self, name: str) -> _Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise ConfigurationError(
                f"no stream {name!r}; have {sorted(self._streams)}"
            ) from None

    # -- registration ------------------------------------------------------------

    def register(
        self,
        stream: str,
        query: Query | CompoundQuery | QuerySpec,
        *,
        tenant: str = "default",
        algorithm: str = "svaqd",
    ) -> str:
        """Admit one standing query on ``stream``; returns its name.

        Runs the full admission pipeline: duplicate check against the
        registry's history, per-tenant quota check (raises
        :class:`~repro.errors.AdmissionError` over quota — the fleet is
        untouched), session construction at the stream's current
        position, book-of-record entry.  The new query starts observing
        at the next clip the stream serves.
        """
        state = self._stream(stream)
        if state.done:
            raise ConfigurationError(
                f"stream {stream!r} has ended; cannot register"
            )
        if isinstance(query, QuerySpec):
            spec = query
        elif isinstance(query, (Query, CompoundQuery)):
            spec = QuerySpec(
                state.fleet.next_auto_name(), query, algorithm=algorithm
            )
        else:
            raise ConfigurationError(
                f"expected Query, CompoundQuery or QuerySpec; got {query!r}"
            )
        # Surface duplicates before spending a quota slot.
        self._check_duplicate(stream, spec.name)
        self.admission.admit(tenant, spec.name)
        try:
            name = state.fleet.register(
                spec, on_sequence=self._emitter(stream, spec.name)
            )
        except Exception:
            self.admission.release(tenant)
            raise
        self.registry.add(
            RegisteredQuery(stream=stream, name=name, tenant=tenant, spec=spec)
        )
        self._charged[(stream, name)] = 0
        return name

    def _check_duplicate(self, stream: str, name: str) -> None:
        try:
            prior = self.registry.get(stream, name)
        except ConfigurationError:
            return
        raise ConfigurationError(
            f"duplicate query name {name!r} on stream {stream!r} "
            f"(already {prior.status})"
        )

    def _emitter(self, stream: str, name: str) -> Any:
        """A per-query emit callback pushing sequence events."""

        def emit(interval: Interval) -> None:
            entry = self.registry.get(stream, name)
            self._push(
                ResultEvent(
                    stream=stream,
                    query=name,
                    tenant=entry.tenant,
                    kind=EVENT_SEQUENCE,
                    interval=interval,
                )
            )

        return emit

    # -- results -----------------------------------------------------------------

    def subscribe(self, stream: str, name: str) -> "asyncio.Queue[ResultEvent]":
        """An unbounded queue receiving the query's future result events.

        Sequences already emitted before subscribing are not replayed —
        subscribers get the live feed; the ``final`` event's ``result``
        always carries the complete run, so late subscribers still see
        everything once.
        """
        self.registry.get(stream, name)  # raises on unknown query
        queue: asyncio.Queue[ResultEvent] = asyncio.Queue()
        self._subscribers.setdefault((stream, name), []).append(queue)
        return queue

    def _push(self, event: ResultEvent) -> None:
        for queue in self._subscribers.get((event.stream, event.query), []):
            queue.put_nowait(event)

    def result(self, stream: str, name: str) -> Any:
        """A finished query's result (completed or cancelled)."""
        state = self._stream(stream)
        try:
            return state.results[name]
        except KeyError:
            raise ConfigurationError(
                f"query {name!r} on stream {stream!r} has no result yet"
            ) from None

    # -- cancellation ------------------------------------------------------------

    def cancel(self, stream: str, name: str) -> Any:
        """Retire one live query; returns (and pushes) its result so far."""
        state = self._stream(stream)
        entry = self.registry.get(stream, name)
        self._charge_deltas(stream)  # settle the ledger before retiring
        result = state.fleet.cancel(name)
        state.results[name] = result
        self.registry.mark(stream, name, QUERY_CANCELLED)
        self.admission.release(entry.tenant)
        self._push(
            ResultEvent(
                stream=stream,
                query=name,
                tenant=entry.tenant,
                kind=EVENT_FINAL,
                result=result,
            )
        )
        return result

    # -- stepping ----------------------------------------------------------------

    def step(self, stream: str) -> int:
        """Advance one stream by up to ``clip_batch`` clips; returns how
        many were processed (0 = the stream is done)."""
        state = self._stream(stream)
        if state.done:
            return 0
        batch = []
        while len(batch) < self._clip_batch and not state.clips.end():
            batch.append(state.clips.next())
        if batch:
            state.fleet.advance(batch)
            self._charge_deltas(stream)
        if state.clips.end():
            self._finish_stream(stream)
        return len(batch)

    def _finish_stream(self, stream: str) -> None:
        state = self._stream(stream)
        live = state.fleet.live
        run = state.fleet.finish()
        state.done = True
        for name in live:
            entry = self.registry.mark(stream, name, QUERY_COMPLETED)
            state.results[name] = run.results[name]
            self.admission.release(entry.tenant)
            self._push(
                ResultEvent(
                    stream=stream,
                    query=name,
                    tenant=entry.tenant,
                    kind=EVENT_FINAL,
                    result=run.results[name],
                )
            )

    def _charge_deltas(self, stream: str) -> None:
        """Meter each live query's *new* fresh model units onto its
        tenant's admission ledger."""
        state = self._stream(stream)
        for name in state.fleet.live:
            stats = state.fleet.context(name).snapshot()
            fresh_detector = (
                stats.detector_invocations - stats.detector_cache_hits
            )
            fresh_recognizer = (
                stats.recognizer_invocations - stats.recognizer_cache_hits
            )
            total = fresh_detector + fresh_recognizer
            already = self._charged.get((stream, name), 0)
            if total > already:
                entry = self.registry.get(stream, name)
                # Split the delta proportionally is overkill — admission
                # budgets total units, so charge the delta as detector
                # units unless it is recognizer work.
                delta_d = min(total - already, fresh_detector)
                delta_r = (total - already) - delta_d
                self.admission.charge(
                    entry.tenant,
                    detector_units=delta_d,
                    recognizer_units=delta_r,
                )
                self._charged[(stream, name)] = total

    async def serve(self) -> None:
        """Drive every stream to completion, yielding between batches.

        Registration / cancellation / subscription calls made from other
        tasks on the same loop interleave between clip batches.  Returns
        when every attached stream has ended.
        """
        while any(not s.done for s in self._streams.values()):
            for name in list(self._streams):
                if not self._streams[name].done:
                    self.step(name)
                    await asyncio.sleep(0)

    # -- health ------------------------------------------------------------------

    def health(self) -> StateDict:
        """Liveness + accounting snapshot (the metrics endpoint).

        Per stream: cursor position, done flag and each live query's full
        :class:`~repro.core.context.ExecutionStats` payload (the same
        shape ``repro query --stats-json`` prints).  ``totals`` merges
        every query ever run — the retry/degraded/cache-hit counters the
        fault-tolerance layer maintains — and ``admission`` reports the
        per-tenant ledgers.
        """
        totals = ExecutionContext()
        streams: StateDict = {}
        for name, state in self._streams.items():
            queries: StateDict = {}
            for qname in state.fleet.live:
                snap = state.fleet.context(qname).snapshot()
                payload = snap.as_dict()
                # Probe-based firing-rate estimates (None = unprobed — a
                # strict-JSON-safe null, never NaN).
                payload["selectivity"] = (
                    state.fleet.session(qname).selectivity_estimates()
                )
                queries[qname] = payload
            for qname in state.fleet.names():
                totals.merge(state.fleet.context(qname))
            streams[name] = {
                "position": state.fleet.position,
                "done": state.done,
                "live": list(state.fleet.live),
                "queries": queries,
                # Fleet-level rate-sharing counters (estimator_s,
                # refresh_s, refresh_skipped, group topology) — these
                # live on the stream's SharedRateBook, not on any one
                # query's context.  None when sharing is off.
                "rate_sharing": state.fleet.rate_book_stats(),
            }
        return {
            "streams": streams,
            "totals": totals.snapshot().as_dict(),
            "admission": self.admission.usage(),
        }

    # -- migration ---------------------------------------------------------------

    def snapshot(self) -> ServiceState:
        """Capture the whole service into one migration bundle.

        Every live session is frozen (``SNAPSHOTTED``) afterwards — this
        process stops being the stream's owner; resume the bundle in a
        fresh :meth:`resume` service.
        """
        return ServiceState.snapshot(self)

    @classmethod
    def resume(
        cls,
        bundle: ServiceState | StateDict,
        videos: Mapping[str, LabeledVideo],
        zoo: ModelZoo | None = None,
        config: OnlineConfig | None = None,
        *,
        admission: AdmissionController | None = None,
        clip_batch: int = 8,
    ) -> "QueryService":
        """A fresh service continuing a captured one mid-stream.

        Deterministic components are rebuilt by the caller, exactly as
        for :meth:`StreamSession.load_state_dict`: pass the same zoo
        line-up, config and per-tenant quota table the captured service
        ran with, plus the video behind every bundled stream.  Live
        sessions resume their quota state, open runs and cache charge
        bookkeeping; subscribers re-subscribe (push queues are transient
        process-local wiring).
        """
        if isinstance(bundle, ServiceState):
            state = bundle
        else:
            state = ServiceState.from_dict(bundle)
        service = cls(
            zoo, config, admission=admission, clip_batch=clip_batch
        )
        service.registry.load_state_dict(state.registry)
        service.admission.load_state_dict(state.admission)
        for stream_name, fleet_state in state.streams.items():
            try:
                video = videos[stream_name]
            except KeyError:
                raise ConfigurationError(
                    f"bundle holds stream {stream_name!r} but no video "
                    f"was supplied for it"
                ) from None
            position = int(fleet_state["position"])
            fleet = FleetRun(service._zoo, video, service._config)
            fleet.load_state_dict(fleet_state)
            service._streams[stream_name] = _Stream(
                video=video,
                clips=ClipStream(video.meta, start_clip=position),
                fleet=fleet,
            )
            for qname in fleet.live:
                fleet.session(qname).set_emit_callback(
                    service._emitter(stream_name, qname)
                )
                stats = fleet.context(qname).snapshot()
                service._charged[(stream_name, qname)] = (
                    stats.detector_invocations
                    - stats.detector_cache_hits
                    + stats.recognizer_invocations
                    - stats.recognizer_cache_hits
                )
        return service
