"""RL010 fixture — linted under a fake src/repro/core path by the tests."""

from repro.errors import ConfigurationError


def _consume(clips):
    return list(clips)


def bad_abandoned_charge(meter, clips):
    meter.record("detector", len(clips))  # line 11: finding
    if not clips:
        raise ConfigurationError("empty chunk abandoned after charging")
    return _consume(clips)


def bad_cached_charge(meter, clip):
    meter.record_cached("detector", 1)  # line 18: finding
    if clip is None:
        raise ConfigurationError("missing clip abandoned after charging")
    return clip


def good_refund_before_raise(meter, clips):
    meter.record("detector", len(clips))
    if not clips:
        meter.refund("detector", len(clips))
        raise ConfigurationError("empty chunk, unit refunded")
    return _consume(clips)


def good_handler_refunds(meter, clips):
    meter.record("detector", len(clips))
    try:
        return _consume(clips)
    except ConfigurationError:
        meter.refund("detector", len(clips))
        raise


def good_giveup_settles(meter, clip):
    meter.record("detector", 1)
    if clip is None:
        meter.record_giveup("detector")
        raise ConfigurationError("gave up on the clip, spend recorded")
    return clip


def good_no_abrupt_exit(meter, clips):
    meter.record("detector", len(clips))
    return _consume(clips)


def good_reconcile_in_finally(meter, clips):
    meter.record("detector", len(clips))
    try:
        if not clips:
            raise ConfigurationError("empty chunk, reconciled by finally")
        return _consume(clips)
    finally:
        meter.reconcile_chunk("detector", len(clips))
