"""Regression tests for the adaptive-ordering bugfix sweep.

Three hot-path bugs rode along with the cost-based conjunct optimizer:

* mid-chunk buffer invalidation double-charged the cost meter — the
  not-yet-consumed chunk suffix was charged at materialisation time and
  charged *again* when the buffer was rebuilt (a ``short_circuit`` flip
  mid-chunk triggers exactly this);
* ``StreamSession.selectivity_estimates`` returned ``float("nan")`` for
  labels no probe had observed yet, which is invalid strict JSON and
  broke every payload it rode in (``--stats-json``, service health);
* the selective-order override rebuilt its rates dict and re-sorted on
  every clip — now cached by a revision counter, with the exact same
  order sequence.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.config import OnlineConfig
from repro.core.optimizer import MIN_PROBES
from repro.core.query import Query
from repro.core.session import StreamSession
from repro.detectors.zoo import default_zoo
from repro.service import QueryService
from repro.video.stream import ClipStream
from tests.conftest import make_kitchen_video

VIDEO = make_kitchen_video(seed=61, duration_s=300.0, video_id="adaptive")
QUERY = Query(objects=["person", "faucet"], action="washing dishes")


def run_with_flips(cached: bool, flips, *, order: str = "user"):
    """Drive the full stream, flipping ``short_circuit`` off inside the
    clip windows in ``flips`` (chosen mid-chunk, so the cached path must
    invalidate and re-materialise its buffer mid-flight)."""
    zoo = default_zoo(seed=3)
    config = replace(
        OnlineConfig(), cache_detections=cached, cache_chunk_clips=8,
        predicate_order=order, probe_every=3,
    )
    session = StreamSession.for_query(
        zoo, QUERY, VIDEO, config, dynamic=False
    )
    stream = ClipStream(VIDEO.meta)
    index = 0
    while not stream.end():
        sc = not any(lo <= index < hi for lo, hi in flips)
        session.process(stream.next(), short_circuit=sc)
        index += 1
    return session.finish(), zoo.cost_meter


class TestMidChunkDoubleCharge:
    """Flipping ``short_circuit`` mid-chunk invalidates the buffer; the
    already-charged unconsumed suffix must be refunded before the chunk
    is re-materialised, keeping the meter identical to the per-clip
    reference path."""

    # Windows are deliberately mid-chunk for 8-clip chunks, and cover
    # both flip directions (True→False re-materialises with a *wider*
    # evaluation set, False→True with a narrower one).
    FLIPS = ((10, 13), (30, 31))

    @pytest.mark.parametrize("order", ["user", "cost"])
    def test_meter_parity_with_serial_reference(self, order):
        serial, serial_meter = run_with_flips(False, self.FLIPS, order=order)
        chunked, chunked_meter = run_with_flips(True, self.FLIPS, order=order)
        assert chunked.sequences == serial.sequences
        assert chunked.evaluations == serial.evaluations
        for model in (
            default_zoo(seed=3).detector.name,
            default_zoo(seed=3).recognizer.name,
        ):
            # The double-charge bug inflated fresh units on the chunked
            # side by one evaluated suffix per invalidation.
            assert chunked_meter.units(model) == serial_meter.units(model)
            assert chunked_meter.ms(model) == pytest.approx(
                serial_meter.ms(model)
            )
        assert chunked_meter.cached_units() == serial_meter.cached_units()

    def test_flip_without_reconcile_would_double_charge(self):
        """The refund is real: materialising a chunk, discarding it
        mid-way and re-materialising charges exactly once after
        reconciliation."""
        zoo = default_zoo(seed=3)
        config = replace(
            OnlineConfig(), cache_chunk_clips=8, cache_detections=True
        )
        session = StreamSession.for_query(
            zoo, QUERY, VIDEO, config, dynamic=False
        )
        stream = ClipStream(VIDEO.meta)
        for _ in range(2):  # consume 2 clips of the first 8-clip chunk
            session.process(stream.next())
        charged_before = zoo.cost_meter.units()
        # Flip short_circuit for clip 2: the 6-clip suffix is refunded,
        # then the rebuilt chunk re-charges it under the new mode.
        session.process(stream.next(), short_circuit=False)
        # Without the refund this would exceed the serial charge for
        # clips 0..2 evaluated + the lookahead; with it, total charged
        # units never exceed one full evaluation of the chunk.
        n_labels = 3
        chunk_units = 8 * (
            n_labels - 1
        ) * VIDEO.meta.geometry.frames_per_clip + 8 * (
            VIDEO.meta.geometry.shots_per_clip
        )
        assert charged_before <= chunk_units
        assert zoo.cost_meter.units() <= chunk_units
        assert zoo.cost_meter.cached_units() == 0


class TestSelectivityJsonSafety:
    """Unprobed labels report ``None`` — never NaN — so every stats
    payload stays valid under strict JSON."""

    def test_unprobed_labels_are_none(self):
        zoo = default_zoo(seed=3)
        config = replace(
            OnlineConfig(), predicate_order="selective", probe_every=0
        )
        session = StreamSession.for_query(
            zoo, QUERY, VIDEO, config, dynamic=False
        )
        stream = ClipStream(VIDEO.meta)
        for _ in range(5):
            session.process(stream.next())
        estimates = session.selectivity_estimates()
        # probe_every=0: nothing is ever probed.
        assert set(estimates) == {"person", "faucet", "washing dishes"}
        assert all(rate is None for rate in estimates.values())
        # The historical regression: float("nan") here made this raise.
        json.dumps(estimates, allow_nan=False)

    def test_result_selectivity_is_strict_json(self):
        zoo = default_zoo(seed=3)
        session = StreamSession.for_query(
            zoo, QUERY, VIDEO, OnlineConfig(), dynamic=True
        )
        stream = ClipStream(VIDEO.meta)
        for _ in range(4):
            session.process(stream.next())
        session.drain()
        result = session.finish()
        json.dumps(dict(result.selectivity), allow_nan=False)

    def test_service_health_payload_is_strict_json(self):
        service = QueryService(default_zoo(seed=3), clip_batch=4)
        service.add_stream("cam", VIDEO)
        name = service.register("cam", QUERY)
        service.step("cam")
        payload = service.health()
        # The whole health payload — including the new per-query
        # selectivity block — must survive strict JSON.
        encoded = json.dumps(payload, sort_keys=True, allow_nan=False)
        decoded = json.loads(encoded)
        selectivity = decoded["streams"]["cam"]["queries"][name][
            "selectivity"
        ]
        assert set(selectivity) == {"person", "faucet", "washing dishes"}


class TestOrderCacheIdentity:
    """The cached order override reproduces the legacy recompute-per-clip
    sequence exactly: same order before every clip, reorders counted only
    on effective changes."""

    def test_cached_order_matches_naive_recomputation(self):
        zoo = default_zoo(seed=3)
        probe_every = 3
        config = replace(
            OnlineConfig(), predicate_order="selective",
            probe_every=probe_every, cache_detections=False,
        )
        session = StreamSession.for_query(
            zoo, QUERY, VIDEO, config, dynamic=True
        )
        stream = ClipStream(VIDEO.meta)
        fired: dict[str, int] = {}
        probed: dict[str, int] = {}
        labels = list(QUERY.objects) + [QUERY.action]
        index = 0
        while not stream.end():
            # Legacy rule, recomputed from scratch before every clip.
            if probed and min(
                probed.get(label, 0) for label in labels
            ) >= MIN_PROBES:
                rates = {
                    label: fired[label] / probed[label] for label in labels
                }
                expected = sorted(labels, key=lambda label: rates[label])
            else:
                expected = labels
            assert session.evaluation_order() == expected
            evaluation = session.process(stream.next())
            if index % probe_every == 0:
                for outcome in evaluation.outcomes:
                    if outcome.evaluated and not outcome.degraded:
                        probed[outcome.label] = (
                            probed.get(outcome.label, 0) + 1
                        )
                        fired[outcome.label] = (
                            fired.get(outcome.label, 0)
                            + int(outcome.indicator)
                        )
            index += 1
        # The scene's rates are spread out, so the order must actually
        # have converged away from the user order at least once.
        assert session.finish().stats.conjunct_reorders >= 1
