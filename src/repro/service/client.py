"""In-process client for :class:`repro.service.service.QueryService`.

The service API is deliberately transport-free — everything is plain
method calls on one event loop.  :class:`ServiceClient` packages the
calling conventions a tenant actually uses (register against a stream,
drain a subscription until the final result, read health) so examples,
tests and the ``repro serve`` demo do not each re-implement them.  A
network transport would wrap the same surface.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.query import CompoundQuery, Query
from repro.core.scheduler import QuerySpec
from repro.errors import ConfigurationError
from repro.service.service import (
    EVENT_FINAL,
    QueryService,
    ResultEvent,
)
from repro.utils.intervals import Interval
from repro._typing import StateDict

__all__ = ["ServiceClient"]


class ServiceClient:
    """One tenant's handle on a running service."""

    def __init__(self, service: QueryService, tenant: str = "default") -> None:
        self._service = service
        self._tenant = tenant

    @property
    def tenant(self) -> str:
        return self._tenant

    def rebind(self, service: QueryService) -> None:
        """Point this client at a migrated service instance.

        Subscriptions do not carry over (push queues are process-local
        wiring) — re-subscribe after rebinding."""
        self._service = service

    def register(
        self,
        stream: str,
        query: Query | CompoundQuery | QuerySpec,
        *,
        algorithm: str = "svaqd",
    ) -> str:
        """Register a standing query as this tenant; returns its name."""
        return self._service.register(
            stream, query, tenant=self._tenant, algorithm=algorithm
        )

    def cancel(self, stream: str, name: str) -> Any:
        """Cancel one of this tenant's queries; returns its result."""
        entry = self._service.registry.get(stream, name)
        if entry.tenant != self._tenant:
            raise ConfigurationError(
                f"query {name!r} on stream {stream!r} belongs to tenant "
                f"{entry.tenant!r}, not {self._tenant!r}"
            )
        return self._service.cancel(stream, name)

    def subscribe(
        self, stream: str, name: str
    ) -> "asyncio.Queue[ResultEvent]":
        """Live push feed of the query's result events."""
        return self._service.subscribe(stream, name)

    async def collect(
        self, stream: str, name: str
    ) -> tuple[list[Interval], Any]:
        """Drain a query's feed until its final event.

        Returns ``(pushed_sequences, final_result)`` — the incremental
        intervals in emission order plus the complete result object.
        Subscribe-then-collect from a task running alongside
        :meth:`QueryService.serve`.
        """
        queue = self.subscribe(stream, name)
        pushed: list[Interval] = []
        while True:
            event = await queue.get()
            if event.kind == EVENT_FINAL:
                return pushed, event.result
            if event.interval is not None:
                pushed.append(event.interval)

    def health(self) -> StateDict:
        """The service's health/metrics payload."""
        return self._service.health()
