"""Rule catalog — importing this package registers every rule.

One module per rule keeps each contract's logic and rationale in one
place; add a new rule by dropping a module here, decorating the class
with :func:`repro.lint.base.register`, and importing it below.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (registration side effects)
    async_safety,
    charge,
    checkpoint,
    determinism,
    floats,
    fork_safety,
    lifecycle,
    meter,
    taxonomy,
    versioning,
)

__all__ = [
    "async_safety",
    "charge",
    "checkpoint",
    "determinism",
    "floats",
    "fork_safety",
    "lifecycle",
    "meter",
    "taxonomy",
    "versioning",
]
