"""High-level engine facades.

:class:`OnlineEngine` answers streaming queries (SVAQ / SVAQD) over one or
many labelled videos; :class:`OfflineEngine` owns a repository, runs the
ingestion phase, and answers top-K queries with RVAQ or the baselines.
These are the objects the SQL layer's planner drives and the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from typing import TYPE_CHECKING

from repro.core.baselines import fagin_baseline, pq_traverse, rvaq_noskip
from repro.core.config import OnlineConfig, RankingConfig
from repro.core.context import ExecutionContext
from repro.core.query import CompoundQuery, Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compound import CompoundResult
    from repro.core.scheduler import FleetRun
from repro.core.distributed import (
    DEFAULT_ROUND_BUDGET,
    DistributedExecutor,
    DistributedTopKResult,
    sharded_top_k,
)
from repro.core.rvaq import RVAQ, TopKResult
from repro.core.scheduler import MultiQueryRun, MultiQueryScheduler
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.core.svaq import SVAQ, OnlineResult
from repro.core.svaqd import SVAQD
from repro.detectors.zoo import ModelZoo, default_zoo
from repro.errors import ConfigurationError, StorageError
from repro.storage.ingest import (
    IngestErrorPolicy,
    IngestExecutor,
    IngestOutcome,
    ingest_many,
    ingest_video,
)
from repro.storage.repository import VideoRepository
from repro.storage.sharded import ShardedRepository
from repro.video.synthesis import LabeledVideo

OnlineAlgorithm = Literal["svaq", "svaqd"]
OfflineAlgorithm = Literal["rvaq", "rvaq-noskip", "fa", "pq-traverse"]
Executor = Literal["serial", "thread"]


@dataclass
class OnlineEngine:
    """Streaming query execution over labelled videos."""

    zoo: ModelZoo = field(default_factory=default_zoo)
    config: OnlineConfig = field(default_factory=OnlineConfig)

    def run(
        self,
        query: Query,
        video: LabeledVideo,
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        context: ExecutionContext | None = None,
    ) -> OnlineResult:
        """Process one video stream and return its result sequences.

        ``context`` threads shared execution counters through the run;
        omit it and the result's ``stats`` carries a private snapshot.
        """
        if algorithm == "svaq":
            return SVAQ(self.zoo, query, self.config).run(
                video, context=context
            )
        if algorithm == "svaqd":
            return SVAQD(self.zoo, query, self.config).run(
                video, context=context
            )
        raise ConfigurationError(f"unknown online algorithm {algorithm!r}")

    def run_many(
        self,
        query: Query,
        videos: Iterable[LabeledVideo],
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        executor: Executor = "serial",
        max_workers: int | None = None,
        context: ExecutionContext | None = None,
    ) -> dict[str, OnlineResult]:
        """Process a collection of streams (e.g. one Table-1 query set).

        ``executor="thread"`` fans the per-video runs out over a
        :class:`~concurrent.futures.ThreadPoolExecutor`.  Results are
        identical to the serial path (the simulated models are
        deterministic per video) and returned in the videos' insertion
        order either way.
        """
        videos = list(videos)
        if executor == "serial":
            return {
                video.video_id: self.run(
                    query, video, algorithm, context=context
                )
                for video in videos
            }
        if executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            # Each video gets a private context; merging afterwards (in
            # insertion order) keeps shared counters exact without
            # per-increment locking across the pool.
            locals_ = [
                ExecutionContext() if context is not None else None
                for _ in videos
            ]
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        self.run, query, video, algorithm, context=local
                    )
                    for video, local in zip(videos, locals_)
                ]
                results = [future.result() for future in futures]
            if context is not None:
                for local in locals_:
                    context.merge(local)
            return {
                video.video_id: result
                for video, result in zip(videos, results)
            }
        raise ConfigurationError(f"unknown executor {executor!r}")

    def run_queries(
        self,
        queries: Iterable,
        video: LabeledVideo,
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        short_circuit: bool = True,
        context: ExecutionContext | None = None,
    ) -> MultiQueryRun:
        """Run many standing queries over one stream, sharing detections.

        ``queries`` is a list of :class:`~repro.core.query.Query` /
        :class:`~repro.core.query.CompoundQuery` objects (auto-named
        ``q0, q1, ...`` and run with ``algorithm``) or explicit
        :class:`~repro.core.scheduler.QuerySpec` entries mixing per-query
        algorithms.  All sessions advance clip-by-clip in lockstep over
        one :class:`~repro.detectors.cache.DetectionScoreCache`, so each
        frame/shot is scored at most once for the whole fleet; results
        are identical to running each query alone.
        """
        return self._fleet_scheduler(queries, algorithm).run(
            video, short_circuit=short_circuit, context=context
        )

    def start_queries(
        self,
        queries: Iterable,
        video: LabeledVideo,
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        start_clip: int = 0,
    ) -> "FleetRun":
        """An incremental fleet run over one stream — the service's path.

        Unlike :meth:`run_queries`, the returned
        :class:`~repro.core.scheduler.FleetRun` is driven by the caller:
        feed clips through :meth:`~repro.core.scheduler.FleetRun.advance`,
        register/cancel queries between steps, checkpoint mid-stream with
        :meth:`~repro.core.scheduler.FleetRun.state_dict`.  ``queries``
        may be empty — the service registers them live.
        """
        from repro.core.scheduler import FleetRun, as_specs

        queries = list(queries)
        specs = as_specs(queries, algorithm=algorithm) if queries else []
        return FleetRun(
            self.zoo, video, self.config, specs, start_clip=start_clip
        )

    def _fleet_scheduler(
        self, queries: Iterable, algorithm: OnlineAlgorithm
    ) -> MultiQueryScheduler:
        from repro.core.scheduler import as_specs

        return MultiQueryScheduler(
            self.zoo,
            as_specs(queries, algorithm=algorithm),
            self.config,
        )

    def run_queries_many(
        self,
        queries: Iterable,
        videos: Iterable[LabeledVideo],
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        executor: Executor = "serial",
        max_workers: int | None = None,
        short_circuit: bool = True,
        context: ExecutionContext | None = None,
    ) -> dict[str, MultiQueryRun]:
        """The multi-query scheduler fanned across a video collection.

        Each video gets its own shared detection cache and lockstep pass;
        ``executor="thread"`` runs the per-video passes concurrently with
        private contexts merged afterwards (insertion order), exactly as
        :meth:`run_many` does.  Returns ``{video_id: MultiQueryRun}`` in
        input order.
        """
        scheduler = self._fleet_scheduler(queries, algorithm)
        videos = list(videos)
        if executor == "serial":
            return {
                video.video_id: scheduler.run(
                    video, short_circuit=short_circuit, context=context
                )
                for video in videos
            }
        if executor == "thread":
            from concurrent.futures import ThreadPoolExecutor

            locals_ = [
                ExecutionContext() if context is not None else None
                for _ in videos
            ]
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        scheduler.run,
                        video,
                        short_circuit=short_circuit,
                        context=local,
                    )
                    for video, local in zip(videos, locals_)
                ]
                runs = [future.result() for future in futures]
            if context is not None:
                for local in locals_:
                    context.merge(local)
            return {
                video.video_id: run for video, run in zip(videos, runs)
            }
        raise ConfigurationError(f"unknown executor {executor!r}")

    def run_compound(
        self,
        compound: "CompoundQuery",
        video: LabeledVideo,
        algorithm: OnlineAlgorithm = "svaqd",
        *,
        context: ExecutionContext | None = None,
    ) -> "CompoundResult":
        """Process a CNF query (OR / multi-action forms, footnotes 3–4)."""
        from repro.core.compound import CompoundOnline

        return CompoundOnline(
            self.zoo, compound, self.config, dynamic=(algorithm == "svaqd")
        ).run(video, context=context)


@dataclass
class OfflineEngine:
    """Repository ownership + top-K query execution (§4).

    ``repository`` may be a single :class:`VideoRepository` or a
    :class:`~repro.storage.sharded.ShardedRepository`; ingestion routes
    through either transparently, and :meth:`top_k` over a sharded
    repository runs the scatter-gather distributed RVAQ
    (:func:`repro.core.distributed.sharded_top_k`) with results identical
    to the single-repository engine.
    """

    zoo: ModelZoo = field(default_factory=default_zoo)
    scoring: ScoringScheme = field(default_factory=PaperScoring)
    config: RankingConfig = field(default_factory=RankingConfig)
    repository: VideoRepository | ShardedRepository = field(
        default_factory=VideoRepository
    )
    _videos: dict[str, LabeledVideo] = field(default_factory=dict, repr=False)

    def ingest(
        self,
        video: LabeledVideo,
        object_labels: Sequence[str],
        action_labels: Sequence[str],
    ) -> None:
        """Run the one-time ingestion phase for a video (§4.2)."""
        ingest = ingest_video(
            video,
            self.zoo,
            object_labels=object_labels,
            action_labels=action_labels,
            scoring=self.scoring,
            config=self.config.online,
        )
        self.repository.add(ingest)
        self._videos[video.video_id] = video

    def ingest_many(
        self,
        videos: Iterable[LabeledVideo],
        object_labels: Sequence[str],
        action_labels: Sequence[str],
        *,
        executor: IngestExecutor = "serial",
        max_workers: int | None = None,
        on_error: IngestErrorPolicy = "raise",
    ) -> list[IngestOutcome] | None:
        """Ingest a collection of videos, optionally in parallel.

        ``executor`` is ``"serial"``, ``"thread"`` or ``"process"`` (see
        :func:`repro.storage.ingest.ingest_many`); results and cost
        accounting are identical across executors, and videos enter the
        repository in input order regardless of completion order.

        Under ``on_error="capture"`` the per-video outcome list is
        returned; the successful videos are in the repository and the
        failures are reported instead of raised, so a flaky batch can be
        resumed with :func:`repro.storage.ingest.retry_failed`.  The
        default ``"raise"`` keeps the all-or-nothing surface
        (:class:`~repro.errors.IngestBatchError` still carries the
        salvageable outcomes).
        """
        videos = list(videos)
        result = ingest_many(
            videos,
            self.zoo,
            object_labels=object_labels,
            action_labels=action_labels,
            scoring=self.scoring,
            config=self.config.online,
            executor=executor,
            max_workers=max_workers,
            on_error=on_error,
        )
        if on_error == "capture":
            for outcome in result:
                if outcome.ok:
                    self.repository.add(outcome.ingest)
                    self._videos[outcome.video_id] = outcome.video
            return result
        for video, ingest in zip(videos, result):
            self.repository.add(ingest)
            self._videos[video.video_id] = video
        return None

    def remove(self, video_id: str) -> None:
        self.repository.remove(video_id)
        self._videos.pop(video_id, None)

    def video(self, video_id: str) -> LabeledVideo:
        try:
            return self._videos[video_id]
        except KeyError:
            raise StorageError(f"video {video_id!r} not ingested here") from None

    def top_k(
        self,
        query: Query,
        k: int | None = None,
        algorithm: OfflineAlgorithm = "rvaq",
        *,
        executor: DistributedExecutor = "serial",
        round_budget: int = DEFAULT_ROUND_BUDGET,
        max_workers: int | None = None,
    ) -> TopKResult | DistributedTopKResult:
        """Answer a top-K query with RVAQ or one of the §5.1 baselines.

        Over a :class:`~repro.storage.sharded.ShardedRepository` the RVAQ
        algorithm runs scatter-gather across the shards (``executor``
        picks serial/thread/process workers); the baselines are
        single-repository algorithms and refuse a sharded store.
        """
        k = k or self.config.default_k
        if isinstance(self.repository, ShardedRepository):
            if algorithm != "rvaq":
                raise ConfigurationError(
                    f"algorithm {algorithm!r} does not run sharded; use "
                    "'rvaq', or merge the shards with "
                    "ShardedRepository.merged() first"
                )
            return sharded_top_k(
                self.repository,
                query,
                k,
                self.scoring,
                self.config,
                executor=executor,
                round_budget=round_budget,
                max_workers=max_workers,
            )
        if algorithm == "rvaq":
            return RVAQ(self.repository, self.scoring, self.config).top_k(query, k)
        if algorithm == "rvaq-noskip":
            return rvaq_noskip(self.repository, query, k, self.scoring, self.config)
        if algorithm == "fa":
            return fagin_baseline(self.repository, query, k, self.scoring)
        if algorithm == "pq-traverse":
            return pq_traverse(self.repository, query, k, self.scoring)
        raise ConfigurationError(f"unknown offline algorithm {algorithm!r}")

    def localized(
        self, result: TopKResult | DistributedTopKResult
    ) -> list[tuple[str, int, int, float]]:
        """Render a result as ``(video_id, start_clip, end_clip, score)``
        rows in rank order — the human-facing answer format."""
        if isinstance(result, DistributedTopKResult):
            return list(result.rows)  # the gather step localised already
        if isinstance(self.repository, ShardedRepository):
            raise ConfigurationError(
                "single-repository results cannot be localised against a "
                "sharded repository"
            )
        rows = []
        for ranked in result.ranked:
            video_id, start = self.repository.to_local(ranked.interval.start)
            _, end = self.repository.to_local(ranked.interval.end)
            rows.append((video_id, start, end, ranked.score))
        return rows
