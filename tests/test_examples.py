"""Every example script must run clean — they are the documented entry
points."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "surveillance_drift.py", "movie_topk.py",
            "sql_interface.py"} <= names
