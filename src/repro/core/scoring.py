"""Scoring functions for the offline ranking framework (§4.1).

The framework is agnostic to the concrete functions as long as they satisfy
the §4.1 contract:

* ``f`` (sequence score from clip scores) is monotone in every clip score,
  dominates sub-sequences, and decomposes over a split via an aggregation
  operator ``⊙`` (Eq. 11);
* ``g`` (clip score from per-predicate scores) is monotone in each
  predicate score;
* ``h`` (per-predicate clip score from raw model scores) is unconstrained.

:class:`ScoringScheme` captures that contract as a strategy object, and
:class:`PaperScoring` provides the instantiation used in the paper's §5
experiments::

    h: S_a(c)  = Σ_s S_a(s)          S_o(c) = Σ_v Σ_t S_o^t(v)
    g: S_q(c)  = S_a(c) · Σ_i S_oi(c)
    f: S_q(z)  = Σ_c S_q(c)            (⊙ = +)

RVAQ's bound arithmetic needs two derived operations: ``combine`` (the ⊙
operator) and ``repeat`` (``f`` applied to a multiset of identical clip
scores — how upper/lower bounds extrapolate unseen clips, Eqs. 13–14).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


class ScoringScheme(ABC):
    """Strategy object bundling the paper's ``f``, ``g`` and ``h``."""

    # -- h: per-predicate clip scores -------------------------------------------

    @abstractmethod
    def object_clip_score(self, track_scores: Iterable[float]) -> float:
        """``h`` for objects: combine all tracked instance scores in a clip
        (Eq. 7)."""

    @abstractmethod
    def action_clip_score(self, shot_scores: Iterable[float]) -> float:
        """``h`` for actions: combine all shot scores in a clip (Eq. 8)."""

    # -- g: clip score -------------------------------------------------------------

    @abstractmethod
    def clip_score(
        self, action_score: float, object_scores: Sequence[float]
    ) -> float:
        """``g``: overall clip score from the per-predicate scores (Eq. 9)."""

    # -- f: sequence score -----------------------------------------------------------

    @property
    @abstractmethod
    def identity(self) -> float:
        """Neutral element of ``⊙`` (the score of an empty sub-sequence)."""

    @abstractmethod
    def combine(self, left: float, right: float) -> float:
        """The ⊙ aggregation operator over sub-sequence scores (Eq. 11)."""

    @abstractmethod
    def repeat(self, clip_score: float, times: int) -> float:
        """``f(s, s, ..., s)`` with ``times`` copies — the extrapolation
        primitive of the RVAQ bounds (Eqs. 13–14)."""

    def aggregate(self, clip_scores: Iterable[float]) -> float:
        """``f``: the score of a sequence from its clip scores (Eq. 10)."""
        total = self.identity
        for score in clip_scores:
            total = self.combine(total, score)
        return total

    # -- vectorised kernels ----------------------------------------------------------
    #
    # The offline hot path (RVAQ's bound refresh, TBClip's access rounds)
    # applies ``g`` and the ⊙/repeat pair to whole NumPy columns at once.
    # The defaults below delegate elementwise to the scalar operations, so
    # any scheme stays correct (and bit-identical to the scalar path)
    # without overriding anything; the built-in schemes override them with
    # true array arithmetic, which is where the speedup comes from.  An
    # override must perform the *same IEEE operations per element* as its
    # scalar counterpart so vectorised and scalar executions agree bitwise.

    def clip_score_block(
        self, action_scores: np.ndarray, object_scores: Sequence[np.ndarray]
    ) -> np.ndarray:
        """``g`` over aligned score columns: element ``i`` combines
        ``action_scores[i]`` with ``[col[i] for col in object_scores]``."""
        return np.fromiter(
            (
                self.clip_score(
                    float(action), [float(col[i]) for col in object_scores]
                )
                for i, action in enumerate(action_scores)
            ),
            dtype=np.float64,
            count=len(action_scores),
        )

    def combine_block(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Elementwise ⊙ over two aligned columns."""
        return np.fromiter(
            (self.combine(float(a), float(b)) for a, b in zip(left, right)),
            dtype=np.float64,
            count=len(left),
        )

    def repeat_block(self, clip_score: float, times: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`repeat` of one score against a count column."""
        return np.fromiter(
            (self.repeat(clip_score, int(t)) for t in times),
            dtype=np.float64,
            count=len(times),
        )


class PaperScoring(ScoringScheme):
    """The additive/multiplicative instantiation of §5 (see module docs)."""

    @property
    def identity(self) -> float:
        return 0.0

    def object_clip_score(self, track_scores: Iterable[float]) -> float:
        return float(sum(track_scores))

    def action_clip_score(self, shot_scores: Iterable[float]) -> float:
        return float(sum(shot_scores))

    def clip_score(
        self, action_score: float, object_scores: Sequence[float]
    ) -> float:
        if action_score < 0 or any(s < 0 for s in object_scores):
            raise ConfigurationError(
                "PaperScoring expects non-negative predicate scores"
            )
        if not object_scores:
            # A pure-action query ranks by the action evidence alone.
            return float(action_score)
        return float(action_score) * float(sum(object_scores))

    def combine(self, left: float, right: float) -> float:
        return left + right

    def repeat(self, clip_score: float, times: int) -> float:
        if times < 0:
            raise ConfigurationError(f"repeat times must be >= 0; got {times}")
        return clip_score * times

    # vectorised kernels: identical IEEE ops per element as the scalar path

    def clip_score_block(
        self, action_scores: np.ndarray, object_scores: Sequence[np.ndarray]
    ) -> np.ndarray:
        action_scores = np.asarray(action_scores, dtype=np.float64)
        if (action_scores < 0).any() or any(
            (np.asarray(col) < 0).any() for col in object_scores
        ):
            raise ConfigurationError(
                "PaperScoring expects non-negative predicate scores"
            )
        if not object_scores:
            return action_scores.copy()
        # Left-to-right accumulation matches the scalar ``sum(...)`` order.
        acc = np.asarray(object_scores[0], dtype=np.float64)
        for col in object_scores[1:]:
            acc = acc + col
        return action_scores * acc

    def combine_block(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return left + right

    def repeat_block(self, clip_score: float, times: np.ndarray) -> np.ndarray:
        if (times < 0).any():
            raise ConfigurationError("repeat times must be >= 0")
        return clip_score * times


class MaxScoring(ScoringScheme):
    """An alternative monotone scheme: a sequence scores its best clip.

    Satisfies the same §4.1 contract with ``⊙ = max`` — included to
    demonstrate (and property-test) that RVAQ is scoring-scheme agnostic.
    Sequence length stops mattering; ranking favours peak evidence.
    """

    @property
    def identity(self) -> float:
        return 0.0

    def object_clip_score(self, track_scores: Iterable[float]) -> float:
        return float(max(track_scores, default=0.0))

    def action_clip_score(self, shot_scores: Iterable[float]) -> float:
        return float(max(shot_scores, default=0.0))

    def clip_score(
        self, action_score: float, object_scores: Sequence[float]
    ) -> float:
        if not object_scores:
            return float(action_score)
        return float(action_score) * float(max(object_scores))

    def combine(self, left: float, right: float) -> float:
        return max(left, right)

    def repeat(self, clip_score: float, times: int) -> float:
        if times < 0:
            raise ConfigurationError(f"repeat times must be >= 0; got {times}")
        return clip_score if times > 0 else 0.0

    # vectorised kernels: identical IEEE ops per element as the scalar path

    def clip_score_block(
        self, action_scores: np.ndarray, object_scores: Sequence[np.ndarray]
    ) -> np.ndarray:
        action_scores = np.asarray(action_scores, dtype=np.float64)
        if not object_scores:
            return action_scores.copy()
        acc = np.asarray(object_scores[0], dtype=np.float64)
        for col in object_scores[1:]:
            acc = np.maximum(acc, col)
        return action_scores * acc

    def combine_block(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        return np.maximum(left, right)

    def repeat_block(self, clip_score: float, times: np.ndarray) -> np.ndarray:
        if (times < 0).any():
            raise ConfigurationError("repeat times must be >= 0")
        return np.where(times > 0, clip_score, 0.0)
