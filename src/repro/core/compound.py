"""Compound-query execution — disjunctions and multi-action conjunctions
over streams (footnotes 3–4).

A :class:`repro.core.query.CompoundQuery` is a CNF over conjunctive
literals.  Per clip, each *predicate label* gets one indicator (Eqs. 1–2,
computed once however many literals mention it); a literal holds when all
its labels' indicators do; a clause holds when any of its literals does;
the clip is positive when every clause holds — exactly the footnote-4
recipe of evaluating per-clause indicators and conjoining them.

Clauses are evaluated in order and the clip short-circuits on the first
false clause; the periodic probe clips of
:class:`repro.core.config.OnlineConfig` keep every label's background
estimator fed, as in SVAQD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import OnlineConfig
from repro.core.dynamics import QuotaManager
from repro.core.indicators import PredicateOutcome
from repro.core.query import CompoundQuery, Query
from repro.core.sequences import SequenceAssembler
from repro.core.svaq import SVAQ
from repro.detectors.zoo import ModelZoo
from repro.errors import QueryError
from repro.utils.intervals import IntervalSet
from repro.video.ground_truth import GroundTruth
from repro.video.model import VideoMeta
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo

import numpy as np


@dataclass(frozen=True)
class CompoundEvaluation:
    """Per-clip outcome of a compound query."""

    clip_id: int
    positive: bool
    #: indicator per evaluated predicate label (missing = short-circuited)
    outcomes: Mapping[str, PredicateOutcome]
    #: truth value per clause, ``None`` when short-circuited
    clause_values: tuple[bool | None, ...]


@dataclass(frozen=True)
class CompoundResult:
    """Streaming result for a compound query."""

    compound: CompoundQuery
    video_id: str
    sequences: IntervalSet
    evaluations: tuple[CompoundEvaluation, ...]
    final_rates: Mapping[str, float] = field(default_factory=dict)


def _label_kinds(compound: CompoundQuery) -> tuple[list[str], list[str]]:
    """Unique frame-level and action labels across all literals, in first
    appearance order; a label used as both kinds is rejected."""
    frame_labels: list[str] = []
    action_labels: list[str] = []
    for clause in compound.clauses:
        for literal in clause:
            for label in literal.frame_level_labels:
                if label in action_labels:
                    raise QueryError(
                        f"label {label!r} used as both object and action"
                    )
                if label not in frame_labels:
                    frame_labels.append(label)
            for label in literal.actions:
                if label in frame_labels:
                    raise QueryError(
                        f"label {label!r} used as both object and action"
                    )
                if label not in action_labels:
                    action_labels.append(label)
    return frame_labels, action_labels


@dataclass
class CompoundOnline:
    """Streaming executor for CNF queries (SVAQD dynamics by default)."""

    zoo: ModelZoo
    compound: CompoundQuery
    config: OnlineConfig = field(default_factory=OnlineConfig)
    #: False runs with static quotas from the configured ``p₀`` (the SVAQ
    #: analogue); True re-estimates backgrounds per clip (the SVAQD one).
    dynamic: bool = True

    def run(
        self,
        video: LabeledVideo,
        *,
        stream: ClipStream | None = None,
        short_circuit: bool = True,
    ) -> CompoundResult:
        frame_labels, action_labels = _label_kinds(self.compound)
        geometry = video.meta.geometry
        quotas: dict[str, int]
        manager: QuotaManager | None = None
        if self.dynamic:
            manager = QuotaManager(
                frame_labels, action_labels, geometry, self.config
            )
        else:
            # Static quotas: reuse SVAQ's derivation over a flat query
            # holding every label once.
            flat = Query(objects=frame_labels, actions=action_labels)
            quotas = SVAQ(self.zoo, flat, self.config).initial_critical_values(
                geometry
            )

        clips = stream if stream is not None else ClipStream(video.meta)
        assembler = SequenceAssembler()
        evaluations: list[CompoundEvaluation] = []
        pending: CompoundEvaluation | None = None
        prev_positive = False
        probe_every = self.config.probe_every
        clip_index = 0
        action_set = set(action_labels)

        while not clips.end():
            clip = clips.next()
            current = manager.quotas() if manager is not None else quotas
            probing = (
                self.dynamic and probe_every > 0
                and clip_index % probe_every == 0
            )
            evaluation = self._evaluate_clip(
                video.meta, video.truth, clip.clip_id, current, action_set,
                short_circuit=short_circuit and not probing,
            )
            clip_index += 1
            evaluations.append(evaluation)
            assembler.push(clip.clip_id, evaluation.positive)
            if manager is not None:
                if pending is not None:
                    manager.update(
                        pending.outcomes,
                        positive=pending.positive,
                        in_guard_band=prev_positive or evaluation.positive,
                    )
                    prev_positive = pending.positive
                pending = evaluation
        if manager is not None and pending is not None:
            manager.update(
                pending.outcomes,
                positive=pending.positive,
                in_guard_band=prev_positive,
            )
        assembler.finish()
        return CompoundResult(
            compound=self.compound,
            video_id=video.video_id,
            sequences=assembler.result(),
            evaluations=tuple(evaluations),
            final_rates=manager.rates() if manager is not None else {},
        )

    # -- per-clip CNF evaluation ---------------------------------------------------

    def _evaluate_clip(
        self,
        meta: VideoMeta,
        truth: GroundTruth,
        clip_id: int,
        quotas: Mapping[str, int],
        action_set: set[str],
        *,
        short_circuit: bool,
    ) -> CompoundEvaluation:
        outcomes: dict[str, PredicateOutcome] = {}

        def indicator(label: str) -> bool:
            cached = outcomes.get(label)
            if cached is not None:
                return cached.indicator
            kind = "action" if label in action_set else "object"
            if kind == "action":
                scores = self.zoo.recognizer.score_clip(meta, truth, label, clip_id)
                threshold = (
                    self.config.action_threshold
                    if self.config.action_threshold is not None
                    else self.zoo.recognizer.threshold
                )
            else:
                scores = self.zoo.detector.score_clip(meta, truth, label, clip_id)
                threshold = (
                    self.config.object_threshold
                    if self.config.object_threshold is not None
                    else self.zoo.detector.threshold
                )
            count = int(np.count_nonzero(scores >= threshold))
            outcome = PredicateOutcome(
                label, kind, evaluated=True,
                count=count, units=len(scores),
                indicator=count >= quotas[label],
            )
            outcomes[label] = outcome
            return outcome.indicator

        clause_values: list[bool | None] = []
        positive = True
        for clause in self.compound.clauses:
            if not positive and short_circuit:
                clause_values.append(None)
                continue
            clause_true = False
            for literal in clause:
                if all(indicator(label) for label in literal.all_labels):
                    clause_true = True
                    break
            clause_values.append(clause_true)
            if not clause_true:
                positive = False
        if not short_circuit:
            # evaluate any label untouched by lazy literal evaluation
            for clause in self.compound.clauses:
                for literal in clause:
                    for label in literal.all_labels:
                        indicator(label)
        return CompoundEvaluation(
            clip_id=clip_id,
            positive=positive,
            outcomes=outcomes,
            clause_values=tuple(clause_values),
        )
