"""``# reprolint: disable=...`` pragma parsing and suppression.

Three forms, mirroring the linters people already know:

* ``# reprolint: disable=RL001`` — suppress on the same line;
* ``# reprolint: disable-next=RL001`` — suppress on the next *code*
  line (blank and comment lines are skipped); when that line opens a
  decorated definition, the suppression also covers the ``def``/``class``
  line itself, since that is where rules anchor their findings;
* ``# reprolint: disable-file=RL001`` — suppress everywhere in the file.

Codes are comma-separated; ``all`` matches every rule.  Pragmas are an
escape hatch for *intentional* violations (e.g. an experiment reading raw
model scores on purpose) — the comment sits next to the code it excuses,
which is exactly where a reviewer wants the justification.
"""

from __future__ import annotations

import re

from repro.lint.base import Finding

__all__ = ["FilePragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next|-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _disable_next_targets(lines: list[str], pragma_lineno: int) -> list[int]:
    """Line numbers a ``disable-next`` pragma on ``pragma_lineno`` covers.

    The next non-blank, non-comment line; if that opens a decorator
    stack, the ``def``/``class`` line underneath it as well (findings on
    decorated definitions anchor at the ``def``, not the ``@``).  A
    pragma on the last line covers nothing.
    """
    targets: list[int] = []
    lineno = pragma_lineno  # 1-based; lines[lineno] is the next line
    while lineno < len(lines):
        stripped = lines[lineno].strip()
        lineno += 1
        if not stripped or stripped.startswith("#"):
            continue
        targets.append(lineno)
        if not stripped.startswith("@"):
            break
        # Scan past the decorator stack (including multi-line decorator
        # calls) to the definition it applies to.
        while lineno < len(lines):
            stripped = lines[lineno].strip()
            lineno += 1
            if stripped.startswith(("def ", "async def ", "class ")):
                targets.append(lineno)
                return targets
        break
    return targets


class FilePragmas:
    """Suppression state for one source file."""

    def __init__(self, source: str) -> None:
        self.file_wide: set[str] = set()
        self.by_line: dict[int, set[str]] = {}
        lines = source.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if "reprolint" not in line:
                continue
            for match in _PRAGMA_RE.finditer(line):
                codes = {
                    code.strip().upper()
                    for code in match.group("codes").split(",")
                    if code.strip()
                }
                kind = match.group("kind")
                if kind == "disable-file":
                    self.file_wide |= codes
                elif kind == "disable-next":
                    for target in _disable_next_targets(lines, lineno):
                        self.by_line.setdefault(target, set()).update(codes)
                else:
                    self.by_line.setdefault(lineno, set()).update(codes)

    def suppresses(self, finding: Finding) -> bool:
        for codes in (self.file_wide, self.by_line.get(finding.line, ())):
            if finding.code in codes or "ALL" in codes:
                return True
        return False
