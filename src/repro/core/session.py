"""The unified, resumable streaming session.

Every online algorithm in the paper — SVAQ (Alg. 1+2), SVAQD (Alg. 3) and
the footnote-3/4 compound executor — is one conceptual pipeline::

    evaluate clip  →  update quotas  →  assemble sequences

:class:`StreamSession` implements that pipeline once, incrementally,
parameterised along the two axes the algorithms actually differ on:

* a **quota policy** (:mod:`repro.core.policies`) — static critical values
  (SVAQ) or kernel-estimated dynamic ones (SVAQD);
* a **clip predicate** (:mod:`repro.core.predicates`) — conjunctive
  Algorithm-2 evaluation or CNF clause evaluation.

``SVAQ.run``, ``SVAQD.run`` and ``CompoundOnline.run`` are thin drivers
over this class.  Because the session is the single execution path, the
cross-cutting machinery lives here exactly once: checkpoint/resume
(:meth:`state_dict` / :meth:`load_state_dict`) works for *all* online
algorithms, per-stage accounting flows into one
:class:`~repro.core.context.ExecutionContext`, probe clips keep dynamic
estimators fed, and the selectivity-sorted evaluation order (footnote 5)
is computed in one place.

A surveillance deployment runs for days; the process will restart.  Feed
clips one at a time, checkpoint the complete dynamic state to a
JSON-serialisable dict at any clip boundary, and resume later (possibly in
a new process) with bit-identical behaviour — the resumed stream produces
exactly the sequences the uninterrupted run would have::

    session = StreamSession.for_query(zoo, query, video, config)
    while not stream.end():
        session.process(stream.next())
        if time_to_checkpoint:
            save(json.dumps(session.state_dict()))
    result = session.finish()

:class:`SvaqdSession` survives as the historical name for the dynamic
conjunctive configuration.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.config import OnlineConfig
from repro.core.context import (
    STAGE_ASSEMBLE,
    STAGE_EVALUATE,
    STAGE_QUOTAS,
    ExecutionContext,
)
from repro.core.indicators import ClipEvaluation
from repro.core.optimizer import ConjunctOptimizer
from repro.core.policies import (
    DynamicQuotaPolicy,
    QuotaPolicy,
    StaticQuotaPolicy,
    policy_from_state_dict,
)
from repro.core.predicates import (
    CnfPredicate,
    ConjunctivePredicate,
    cnf_label_kinds,
)
from repro.core.query import CompoundQuery, Query
from repro.core.results import degraded_sequence_spans
from repro.core.sequences import SequenceAssembler
from repro.detectors.cache import DetectionScoreCache
from repro.detectors.zoo import ModelZoo
from repro.errors import ConfigurationError
from repro.utils.intervals import Interval
from repro.video.model import ClipView
from repro.video.synthesis import LabeledVideo
from repro._typing import StateDict

if TYPE_CHECKING:
    from repro.core.ratebook import SharedRateBook

#: Format tag written into checkpoints; bump on incompatible changes.
#: v3 adds the detection-score-cache charge state; v4 adds the
#: fault-tolerance state (degraded clips + hold-last-estimate memory);
#: v5 replaces the bare selectivity counters with the conjunct
#: optimizer's state (probe statistics, reorder counter, stored epoch
#: order).  v1–v4 checkpoints (missing entries) still load.
CHECKPOINT_VERSION = 5

#: Session lifecycle states.  A session is born RUNNING; the service layer
#: marks it DRAINING when no further clips will arrive (cancel requested or
#: stream exhausted, finish pending), SNAPSHOTTED when its state was
#: captured into a migration bundle (the local instance is then frozen —
#: the resumed copy elsewhere is the live one), and CLOSED once
#: :meth:`StreamSession.finish` has built the result.
SESSION_RUNNING = "running"
SESSION_DRAINING = "draining"
SESSION_SNAPSHOTTED = "snapshotted"
SESSION_CLOSED = "closed"


class StreamSession:
    """Incremental execution of one online query over one video stream."""

    #: Not checkpointed (RL002).  The deterministic components are
    #: reconstructed by the caller (see :meth:`load_state_dict`): the
    #: video/config/context handles and everything derived from them
    #: (``_labels``/``_n_labels``/``_armed``/``_chunkable``) come from
    #: building the session the same way the checkpointed one was built.
    #: ``_evaluations`` is per-clip trace data, deliberately *not* part of
    #: resumable state — a resumed session records only post-resume
    #: evaluations (contract pinned by ``test_session.py``), while
    #: sequences/stats do round-trip.  ``_record_trace`` is a constructor
    #: flag and ``_final_stats`` only exists after finish (finished
    #: sessions refuse to checkpoint).  ``_lifecycle`` is process-local: a
    #: restored session is by definition RUNNING (DRAINING/SNAPSHOTTED/
    #: CLOSED are terminal states of *this* instance, not of the logical
    #: query), and ``_on_emit`` is transient subscription wiring the
    #: service re-attaches after a resume.
    _CHECKPOINT_EXCLUDE = frozenset(
        {
            "_video",
            "_config",
            "_context",
            "_labels",
            "_n_labels",
            "_armed",
            "_chunkable",
            "_adaptive",
            "_epoch_clips",
            "_evaluations",
            "_record_trace",
            "_final_stats",
            "_lifecycle",
            "_on_emit",
        }
    )

    #: The declared state machine (RL007).  Only the methods named here
    #: may assign ``self._lifecycle``, each guarded on the current state;
    #: the values document the states a transition may fire from.
    _LIFECYCLE_ATTR = "_lifecycle"
    _LIFECYCLE_TRANSITIONS = {
        "drain": (SESSION_RUNNING, SESSION_DRAINING),
        "mark_snapshotted": (SESSION_RUNNING, SESSION_DRAINING),
        "finish": (SESSION_RUNNING, SESSION_DRAINING, SESSION_CLOSED),
    }

    def __init__(
        self,
        video: LabeledVideo,
        predicate: Any,
        policy: QuotaPolicy,
        config: OnlineConfig | None = None,
        *,
        record_trace: bool = False,
        context: ExecutionContext | None = None,
    ) -> None:
        self._video = video
        self._predicate = predicate
        self._policy = policy
        self._config = config or OnlineConfig()
        self._context = context if context is not None else ExecutionContext()
        predicate.attach_context(self._context)
        policy.attach_context(self._context)
        # Static quotas never move, so the per-clip dict build is hoisted
        # out of the hot loop (dynamic policies still read per clip).
        self._static_quotas = None if policy.dynamic else policy.quotas()
        self._labels = tuple(predicate.labels)
        self._n_labels = len(self._labels)
        # Static quotas freeze Algorithm 2's inputs for whole cache chunks,
        # so conjunctive sessions with a cache evaluate chunk-at-a-time
        # through a buffer (SVAQD moves quotas per clip and stays serial).
        # Armed fault tolerance needs the per-clip retry/degradation path,
        # so it also disables chunking.
        self._armed = self._config.fault_tolerant
        self._chunkable = (
            not policy.dynamic
            and not self._armed
            and getattr(predicate, "supports_chunking", False)
            and predicate.cache is not None
        )
        self._degraded_clips: list[int] = []
        self._chunk_buffer: list[tuple[Any, tuple]] = []
        self._buffer_pos = 0
        self._buffer_short_circuit: bool | None = None
        self._lifecycle = SESSION_RUNNING
        self._on_emit: Callable[[Interval], None] | None = None
        self._assembler = SequenceAssembler()
        self._evaluations: list[Any] = []
        self._pending: Any | None = None
        self._pending_map: Mapping[str, Any] | None = None
        self._prev_positive = False
        self._clip_index = 0
        self._finished = False
        self._record_trace = record_trace
        self._trace: list[dict[str, int]] = []
        self._final_stats = None
        # The conjunct optimizer owns the probe selectivity statistics
        # (footnote 5) and, under predicate_order="selective"/"cost",
        # ranks the conjuncts by firing rate / expected cost-to-falsify.
        # Probes evaluate every predicate, so the rates are unbiased by
        # the evaluation order itself.
        self._adaptive = (
            self._config.predicate_order != "user"
            and getattr(predicate, "supports_ordering", False)
        )
        cost_fn = getattr(predicate, "unit_cost_ms", None)
        self._optimizer = ConjunctOptimizer(
            predicate.labels, self._config.predicate_order, cost_fn=cost_fn
        )
        self._reorders_seen = 0
        # Static adaptive sessions refresh their order on cache-chunk
        # boundaries (the epoch), chunked or not, so the serial reference
        # path stays bit-identical to the chunked fast path.
        self._epoch_clips = (
            getattr(predicate, "chunk_clips", 0) if self._adaptive else 0
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def for_query(
        cls,
        zoo: ModelZoo,
        query: Query,
        video: LabeledVideo,
        config: OnlineConfig | None = None,
        *,
        dynamic: bool = True,
        k_crit_overrides: Mapping[str, int] | None = None,
        record_trace: bool = False,
        context: ExecutionContext | None = None,
        cache: DetectionScoreCache | None = None,
        rate_book: "SharedRateBook | None" = None,
        share_key: tuple[str, object] | None = None,
    ) -> "StreamSession":
        """A session over a canonical conjunctive query.

        ``dynamic=True`` is SVAQD (Algorithm 3); ``dynamic=False`` is SVAQ
        (Algorithm 1) with critical values fixed from the configured ``p₀``
        or pinned per label via ``k_crit_overrides``.  ``cache`` attaches a
        shared :class:`~repro.detectors.cache.DetectionScoreCache` so many
        sessions over one stream score each clip at most once (the
        multi-query scheduler passes one per video).  ``rate_book`` plus a
        ``share_key`` of ``(member name, group key)`` analogously attaches
        the fleet's shared rate estimators: dynamic sessions admitted under
        the same group key share one rate series and quota refresh.
        """
        config = config or OnlineConfig()
        predicate = ConjunctivePredicate(zoo, query, video, config, cache=cache)
        policy = cls._build_policy(
            predicate.frame_labels,
            predicate.action_labels,
            video,
            config,
            dynamic=dynamic,
            k_crit_overrides=k_crit_overrides,
            rate_book=rate_book,
            share_key=share_key,
        )
        return cls(
            video, predicate, policy, config,
            record_trace=record_trace, context=context,
        )

    @classmethod
    def for_compound(
        cls,
        zoo: ModelZoo,
        compound: CompoundQuery,
        video: LabeledVideo,
        config: OnlineConfig | None = None,
        *,
        dynamic: bool = True,
        k_crit_overrides: Mapping[str, int] | None = None,
        record_trace: bool = False,
        context: ExecutionContext | None = None,
        cache: DetectionScoreCache | None = None,
        rate_book: "SharedRateBook | None" = None,
        share_key: tuple[str, object] | None = None,
    ) -> "StreamSession":
        """A session over a CNF compound query (footnotes 3–4)."""
        config = config or OnlineConfig()
        predicate = CnfPredicate(zoo, compound, video, config, cache=cache)
        frame_labels, action_labels = cnf_label_kinds(compound)
        policy = cls._build_policy(
            frame_labels, action_labels, video, config,
            dynamic=dynamic, k_crit_overrides=k_crit_overrides,
            rate_book=rate_book, share_key=share_key,
        )
        return cls(
            video, predicate, policy, config,
            record_trace=record_trace, context=context,
        )

    @staticmethod
    def _build_policy(
        frame_labels: Iterable[str],
        action_labels: Iterable[str],
        video: LabeledVideo,
        config: OnlineConfig,
        *,
        dynamic: bool,
        k_crit_overrides: Mapping[str, int] | None,
        rate_book: "SharedRateBook | None" = None,
        share_key: tuple[str, object] | None = None,
    ) -> QuotaPolicy:
        geometry = video.meta.geometry
        if dynamic:
            if rate_book is not None and share_key is not None:
                name, group_key = share_key
                return rate_book.admit(
                    group_key, name, frame_labels, action_labels,
                    geometry, config,
                )
            return DynamicQuotaPolicy.from_config(
                frame_labels, action_labels, geometry, config
            )
        return StaticQuotaPolicy.from_config(
            frame_labels, action_labels, geometry, config,
            overrides=k_crit_overrides,
        )

    # -- introspection -----------------------------------------------------------

    @property
    def clip_index(self) -> int:
        """Number of clips processed so far (= the next expected clip id)."""
        return self._clip_index

    @property
    def context(self) -> ExecutionContext:
        """The execution counters this session charges its work to."""
        return self._context

    @property
    def policy(self) -> QuotaPolicy:
        return self._policy

    @property
    def cache(self) -> DetectionScoreCache | None:
        """The session's detection score cache (None = serial path)."""
        return self._predicate.cache

    @property
    def lifecycle(self) -> str:
        """Current lifecycle state: RUNNING/DRAINING/SNAPSHOTTED/CLOSED."""
        return self._lifecycle

    # -- lifecycle ---------------------------------------------------------------

    def drain(self) -> None:
        """Announce that no further clips will arrive.

        DRAINING sits between the last :meth:`process` and :meth:`finish`
        — a cancelled or exhausted query that still owes its final result.
        Idempotent from RUNNING/DRAINING; a frozen or closed session
        cannot re-enter the pipeline.
        """
        if self._lifecycle in (SESSION_SNAPSHOTTED, SESSION_CLOSED):
            raise ConfigurationError(
                f"cannot drain a {self._lifecycle} session"
            )
        self._lifecycle = SESSION_DRAINING

    def mark_snapshotted(self) -> None:
        """Freeze this instance after its state was captured for migration.

        The snapshot is the live copy from here on: a frozen session
        refuses :meth:`process` and :meth:`finish`, so two instances can
        never both advance the same logical query.
        """
        if self._lifecycle == SESSION_CLOSED:
            raise ConfigurationError("cannot snapshot a finished session")
        self._lifecycle = SESSION_SNAPSHOTTED

    def set_emit_callback(
        self, on_emit: Callable[[Interval], None] | None
    ) -> None:
        """Subscribe to result sequences the moment they close.

        The callback fires for sequences closed by :meth:`process` and for
        the final open run closed by :meth:`finish`; sequences restored
        from a checkpoint are not re-emitted.  The service layer uses this
        to push results incrementally instead of waiting for end-of-stream.
        """
        self._on_emit = on_emit
        self._assembler.on_emit = on_emit

    def quotas(self) -> dict[str, int]:
        """Current per-predicate critical values."""
        return self._policy.quotas()

    def evaluation_order(self) -> list[str] | None:
        """The predicate order the next clip will be evaluated in.

        ``config.predicate_order = "selective"`` sorts predicates by their
        empirical clip-level selectivity (ascending firing rate — the
        predicate most likely to fail first) once at least three probe
        clips have been observed; ``"cost"`` ranks by expected model
        cost-to-falsify (cheapest likely-to-fail predicate first, sharing
        degrees included); before selectivity converges, and under
        ``"user"``, the query's own order stands (footnote 5).  CNF
        predicates fix their own clause order and return ``None``.
        """
        if not self._predicate.supports_ordering:
            return None
        override = self._order_override()
        return override if override is not None else list(self._predicate.labels)

    def _order_override(self, clip_id: int | None = None) -> list[str] | None:
        """The optimizer's order, or None when the user order stands — the
        hot loop passes None through so the evaluator can take its
        precomputed fast path (identical semantics to the user order).

        Dynamic sessions refresh per clip; static adaptive sessions pass
        the clip id and refresh once per chunk-aligned epoch, so the
        serial and chunked paths reorder on identical boundaries.
        """
        if not self._adaptive:
            return None
        if clip_id is not None and not self._policy.dynamic and self._epoch_clips:
            order = self._optimizer.order_for_epoch(clip_id // self._epoch_clips)
        else:
            order = self._optimizer.current_order()
        return list(order) if order is not None else None

    def _sync_reorders(self) -> None:
        """Mirror newly-counted order changes into the execution stats."""
        reorders = self._optimizer.reorders
        if reorders != self._reorders_seen:
            self._context.conjunct_reorders += reorders - self._reorders_seen
            self._reorders_seen = reorders

    def selectivity_estimates(self) -> dict[str, float | None]:
        """Empirical per-predicate firing rates from probe clips.

        ``None`` (not NaN) for labels no probe has observed yet, so the
        payload stays valid under strict JSON (``--stats-json``, the
        service health endpoint)."""
        return self._optimizer.selectivity_estimates()

    def unit_cost_estimates(self) -> dict[str, float] | None:
        """Per-label expected fresh cost of one clip evaluation in
        simulated ms, or ``None`` when the predicate carries no cost
        signal (CNF)."""
        return self._optimizer.unit_costs_ms()

    @property
    def chunkable(self) -> bool:
        """Whether this session runs the chunked static-quota fast path
        (adaptive ordering composes with it rather than disabling it)."""
        return self._chunkable

    @property
    def predicate_labels(self) -> tuple[str, ...]:
        """All predicate labels, in the user's order (for fleet planning)."""
        return self._labels

    def set_label_sharing(self, degrees: Mapping[str, int]) -> None:
        """Receive the fleet's label → live-query-count map; shared labels
        rank cheaper under cost ordering (their fresh inference amortises
        across sessions through the shared detection cache)."""
        self._optimizer.set_sharing(degrees)

    # -- streaming --------------------------------------------------------------

    def process(
        self, clip: ClipView, *, short_circuit: bool = True
    ) -> ClipEvaluation | None:
        """Evaluate one clip and fold it into the session state.

        Stage timing is inlined (``perf_counter`` pairs rather than the
        ``ExecutionContext.stage`` context manager) — the accounting is
        identical but this method runs once per clip per session and the
        generator machinery was a measurable share of it.
        """
        if self._finished:
            raise ConfigurationError("session already finished")
        if self._lifecycle != SESSION_RUNNING:
            raise ConfigurationError(
                f"cannot process clips in a {self._lifecycle} session"
            )
        context = self._context
        if self._chunkable:
            # Static quotas: the whole pipeline reduces to consuming the
            # chunk buffer plus a few counter increments, so this branch
            # stays deliberately lean (one timing pair, charged to the
            # evaluate stage).  Adaptive ordering composes with it — the
            # order is decided at chunk-materialisation time, once per
            # epoch, and probe rows are marked inside the chunk.
            quotas = self._static_quotas
            if self._record_trace:
                self._trace.append(dict(quotas))
            start = time.perf_counter()
            clip_id = clip.clip_id
            buffer = self._chunk_buffer
            pos = self._buffer_pos
            if (
                pos >= len(buffer)
                or buffer[pos][0].clip_id != clip_id
                or self._buffer_short_circuit != short_circuit
            ):
                if pos < len(buffer):
                    # Mid-chunk invalidation: the unconsumed suffix was
                    # charged at materialisation time and is about to be
                    # re-materialised (and re-charged) — refund it first
                    # so the meter matches the per-clip path exactly.
                    self._predicate.reconcile_chunk(buffer[pos][0].clip_id)
                order = None
                probe_every = 0
                if self._adaptive:
                    probe_every = self._config.probe_every
                    order = self._order_override(clip_id)
                    self._sync_reorders()
                self._chunk_buffer = buffer = list(zip(
                    *self._predicate.evaluate_chunk(
                        clip_id, quotas, short_circuit=short_circuit,
                        order=order, probe_every=probe_every,
                        probe_offset=self._clip_index,
                    )
                ))
                self._buffer_short_circuit = short_circuit
                pos = 0
            evaluation, chunk_stats = buffer[pos]
            self._buffer_pos = pos + 1
            if self._adaptive:
                probe_every = self._config.probe_every
                if (
                    probe_every > 0
                    and self._clip_index % probe_every == 0
                ):
                    context.probe_clips += 1
                    for outcome in evaluation.outcomes:
                        if outcome.evaluated and not outcome.degraded:
                            self._optimizer.observe(
                                outcome.label, outcome.indicator
                            )
            evaluated_n, obj_fresh, obj_cached, act_fresh, act_cached = (
                chunk_stats
            )
            # Meter charges landed at chunk-evaluation time; the logical
            # per-session invocation counters land here, per clip.
            context.detector_invocations += obj_fresh + obj_cached
            context.detector_cache_hits += obj_cached
            context.recognizer_invocations += act_fresh + act_cached
            context.recognizer_cache_hits += act_cached
            self._clip_index += 1
            context.clips_processed += 1
            context.predicates_evaluated += evaluated_n
            context.predicates_skipped += self._n_labels - evaluated_n
            self._evaluations.append(evaluation)
            emitted = self._assembler.push(clip_id, evaluation.positive)
            if emitted is not None:
                context.sequences_emitted += 1
            pending = self._pending
            if pending is not None:
                # Static quotas never move (the policy update is a no-op
                # by design); only the guard-band lookahead is tracked.
                self._prev_positive = pending.positive
            self._pending = evaluation
            context.add_stage_time(
                STAGE_EVALUATE, time.perf_counter() - start
            )
            return evaluation
        dynamic = self._policy.dynamic
        probe_every = self._config.probe_every
        # Adaptive static sessions probe too — their selectivity estimates
        # need unbiased observations just like the dynamic estimators do.
        probing = (
            (dynamic or self._adaptive)
            and probe_every > 0
            and self._clip_index % probe_every == 0
        )
        quotas = (
            self._static_quotas
            if self._static_quotas is not None
            else self._policy.quotas()
        )
        if self._record_trace:
            self._trace.append(dict(quotas))
        order = self._order_override(clip.clip_id)
        if self._adaptive:
            self._sync_reorders()
        start = time.perf_counter()
        evaluation = self._predicate.evaluate(
            clip.clip_id,
            quotas,
            short_circuit=short_circuit and not probing,
            order=order,
        )
        context.add_stage_time(STAGE_EVALUATE, time.perf_counter() - start)
        outcome_map = self._predicate.outcome_map(evaluation)
        evaluated_n = 0
        for outcome in outcome_map.values():
            if outcome.evaluated:
                evaluated_n += 1
        if probing:
            context.probe_clips += 1
            for outcome in outcome_map.values():
                # Degraded outcomes carry no fresh model evidence, so they
                # must not teach the selectivity estimator.
                if outcome.evaluated and not outcome.degraded:
                    self._optimizer.observe(outcome.label, outcome.indicator)
        self._clip_index += 1
        context.clips_processed += 1
        context.predicates_evaluated += evaluated_n
        context.predicates_skipped += self._n_labels - evaluated_n
        if self._armed and evaluation.degraded:
            context.clips_degraded += 1
            self._degraded_clips.append(clip.clip_id)
        self._evaluations.append(evaluation)
        start = time.perf_counter()
        emitted = self._assembler.push(clip.clip_id, evaluation.positive)
        context.add_stage_time(STAGE_ASSEMBLE, time.perf_counter() - start)
        if emitted is not None:
            context.sequences_emitted += 1
        pending = self._pending
        if dynamic:
            start = time.perf_counter()
            if pending is not None:
                self._policy.update(
                    self._pending_map,
                    positive=pending.positive,
                    in_guard_band=self._prev_positive or evaluation.positive,
                )
                context.quota_refreshes += 1
                self._prev_positive = pending.positive
            context.add_stage_time(STAGE_QUOTAS, time.perf_counter() - start)
        elif pending is not None:
            # Static quotas never move (the policy update is a no-op by
            # design), so the quotas stage reduces to guard-band tracking.
            self._prev_positive = pending.positive
        self._pending = evaluation
        self._pending_map = outcome_map
        return evaluation

    def finish(self) -> Any:
        """Close the stream and return the run's result."""
        if self._lifecycle == SESSION_SNAPSHOTTED:
            raise ConfigurationError(
                "a snapshotted session is frozen; resume the captured "
                "state in a new instance instead"
            )
        if not self._finished:
            start = time.perf_counter()
            if self._pending is not None:
                if self._policy.dynamic:
                    self._policy.update(
                        self._pending_map
                        if self._pending_map is not None
                        else self._predicate.outcome_map(self._pending),
                        positive=self._pending.positive,
                        in_guard_band=self._prev_positive,
                    )
                    self._context.quota_refreshes += 1
                self._pending = None
                self._pending_map = None
            self._context.add_stage_time(
                STAGE_QUOTAS, time.perf_counter() - start
            )
            start = time.perf_counter()
            emitted = self._assembler.finish()
            self._context.add_stage_time(
                STAGE_ASSEMBLE, time.perf_counter() - start
            )
            if emitted is not None:
                self._context.sequences_emitted += 1
            if self._degraded_clips:
                self._context.sequences_degraded += len(
                    degraded_sequence_spans(
                        self._assembler.result(),
                        tuple(self._degraded_clips),
                    )
                )
            self._finished = True
            self._lifecycle = SESSION_CLOSED
            self._final_stats = self._context.snapshot()
        return self._predicate.build_result(
            video_id=self._video.video_id,
            sequences=self._assembler.result(),
            evaluations=tuple(self._evaluations),
            final_rates=self._policy.rates(),
            k_crit_trace=tuple(self._trace) if self._record_trace else (),
            stats=self._final_stats,
            degraded_clips=tuple(self._degraded_clips),
            selectivity=self.selectivity_estimates(),
        )

    # -- checkpointing -------------------------------------------------------------

    def state_dict(self) -> StateDict:
        """Complete dynamic state, JSON-serialisable.

        Captures everything that influences future decisions: the quota
        policy's state (estimators or static quotas), the open result run,
        the guard-band lookahead and the probe counter.  Already-emitted
        sequences are included so the resumed session's final result is
        the full stream's.  Since v3 the detection score cache's charge
        bookkeeping rides along, so a resumed session keeps metering
        already-charged clips as cache hits rather than re-charging fresh
        model units.
        """
        if self._finished:
            raise ConfigurationError("cannot checkpoint a finished session")
        cache = self._predicate.cache
        return {
            "version": CHECKPOINT_VERSION,
            "clip_index": self._clip_index,
            "prev_positive": self._prev_positive,
            "pending": (
                self._predicate.evaluation_to_dict(self._pending)
                if self._pending is not None
                else None
            ),
            "policy": self._policy.state_dict(),
            "assembler": self._assembler.state_dict(),
            # v5: the conjunct optimizer's full state (probe statistics,
            # reorder counter, stored epoch order) — superset of the v4
            # "selectivity" payload.
            "optimizer": self._optimizer.state_dict(),
            "trace": list(self._trace),
            "cache": cache.state_dict() if cache is not None else None,
            # v4: fault-tolerance state.  The degraded-clip list feeds the
            # final result/stats; the held estimates make a resumed
            # ``hold_last_estimate`` session replay the same counts the
            # uninterrupted run would.
            "degraded_clips": list(self._degraded_clips),
            "held": (
                self._predicate.held_state()
                if hasattr(self._predicate, "held_state")
                else {}
            ),
        }

    def load_state_dict(self, state: StateDict) -> "StreamSession":
        """Restore the dynamic state captured by :meth:`state_dict`.

        The deterministic components (models, video, query, config) are
        reconstructed by the caller — build the session exactly as the
        checkpointed one was built, then load.  Returns ``self``.

        Accepts every version the lattice has seen (1..5, each widening
        handled by a keyed fallback below); anything outside that range —
        notably a checkpoint written by a *newer* build — is rejected
        rather than silently misread.
        """
        version = int(state.get("version", 1))
        if not 1 <= version <= CHECKPOINT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint version {version}; this build "
                f"reads versions 1..{CHECKPOINT_VERSION}"
            )
        self._clip_index = int(state["clip_index"])
        self._prev_positive = bool(state["prev_positive"])
        pending = state.get("pending")
        self._pending = (
            self._predicate.evaluation_from_dict(pending)
            if pending is not None
            else None
        )
        self._pending_map = (
            self._predicate.outcome_map(self._pending)
            if self._pending is not None
            else None
        )
        self._chunk_buffer = []
        self._buffer_pos = 0
        self._buffer_short_circuit = None
        self._lifecycle = SESSION_RUNNING
        self._finished = False
        if "policy" in state:
            policy_state = state["policy"]
        else:
            # v1 checkpoints (SVAQD only) stored bare estimator states.
            policy_state = {"kind": "dynamic", "estimators": state["estimators"]}
        self._policy = policy_from_state_dict(policy_state, self._policy)
        if not self._policy.dynamic:
            self._static_quotas = self._policy.quotas()
        cache_state = state.get("cache")  # absent in v1/v2 checkpoints
        cache = self._predicate.cache
        if cache_state is not None and cache is not None:
            cache.load_state_dict(cache_state)
        self._assembler = SequenceAssembler.from_state_dict(
            state["assembler"], on_emit=self._on_emit
        )
        self._degraded_clips = [
            int(c) for c in state.get("degraded_clips", [])
        ]
        held = state.get("held")
        if held and hasattr(self._predicate, "load_held_state"):
            self._predicate.load_held_state(held)
        optimizer_state = state.get("optimizer")
        if optimizer_state is None:
            # v2–v4 checkpoints carried only the bare probe counters.
            optimizer_state = state.get("selectivity", {})
        self._optimizer.load_state_dict(optimizer_state)
        self._reorders_seen = self._optimizer.reorders
        self._trace = [
            {label: int(k) for label, k in entry.items()}
            for entry in state.get("trace", [])
        ]
        return self


class SvaqdSession(StreamSession):
    """Incremental SVAQD over one video stream — the historical name for
    ``StreamSession.for_query(..., dynamic=True)``, kept for its
    positional ``(zoo, query, video, config)`` constructor."""

    def __init__(
        self,
        zoo: ModelZoo,
        query: Query,
        video: LabeledVideo,
        config: OnlineConfig | None = None,
        *,
        record_trace: bool = False,
        context: ExecutionContext | None = None,
    ) -> None:
        config = config or OnlineConfig()
        predicate = ConjunctivePredicate(zoo, query, video, config)
        policy = DynamicQuotaPolicy.from_config(
            predicate.frame_labels,
            predicate.action_labels,
            video.meta.geometry,
            config,
        )
        super().__init__(
            video, predicate, policy, config,
            record_trace=record_trace, context=context,
        )

    def process(
        self, clip: ClipView, *, short_circuit: bool = True
    ) -> ClipEvaluation:
        return super().process(clip, short_circuit=short_circuit)

    @classmethod
    def from_state_dict(
        cls,
        state: StateDict,
        zoo: ModelZoo,
        query: Query,
        video: LabeledVideo,
        config: OnlineConfig | None = None,
    ) -> "SvaqdSession":
        """Rebuild a session from :meth:`StreamSession.state_dict` output."""
        session = cls(zoo, query, video, config)
        session.load_state_dict(state)
        return session
