"""Table 7 — offline top-K over the multi-video YouTube sets q1/q2, K=5."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import table7_youtube_topk

_result = None


def compute():
    global _result
    if _result is None:
        _result = table7_youtube_topk.run(
            seed=BENCH_SEED, scale=min(0.15, BENCH_SCALE)
        )
        publish("table7_youtube_topk", _result.render())
    return _result


def test_table7_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    for qid in result.measurements:
        fa = result.measurement(qid, "fa")
        rvaq = result.measurement(qid, "rvaq")
        traverse = result.measurement(qid, "pq-traverse")
        assert fa.random_accesses > rvaq.random_accesses, qid
        assert rvaq.random_accesses <= traverse.random_accesses, qid
        assert fa.runtime_ms > rvaq.runtime_ms, qid
