"""Simulated detectors: calibration, caching, determinism, vocabularies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.cost import CostMeter
from repro.detectors.profiles import I3D, IDEAL_OBJECT, MASK_RCNN, YOLOV3
from repro.detectors.simulated import (
    SimulatedActionRecognizer,
    SimulatedObjectDetector,
    edge_mask,
    presence_mask,
)
from repro.errors import DetectorError
from repro.utils.intervals import IntervalSet
from tests.conftest import make_kitchen_video

VIDEO = make_kitchen_video(seed=11, duration_s=900.0, video_id="calib")


def empirical_rates(detector, label: str) -> tuple[float, float]:
    scores = detector.score_video(VIDEO.meta, VIDEO.truth, label)
    present = presence_mask(
        VIDEO.truth.object_frames(label), VIDEO.meta.usable_frames
    )
    firing = scores >= detector.threshold
    tpr = firing[present].mean() if present.any() else 0.0
    fpr = firing[~present].mean() if (~present).any() else 0.0
    return float(tpr), float(fpr)


class TestMasks:
    def test_presence_mask(self):
        mask = presence_mask(IntervalSet([(2, 4)]), 8)
        assert mask.tolist() == [False, False, True, True, True, False, False, False]

    def test_edge_mask(self):
        mask = edge_mask(IntervalSet([(2, 9)]), 12, edge_units=2)
        assert np.flatnonzero(mask).tolist() == [2, 3, 8, 9]

    def test_edge_mask_zero_width(self):
        assert not edge_mask(IntervalSet([(0, 5)]), 10, 0).any()


class TestCalibration:
    def test_maskrcnn_fpr(self):
        _, fpr = empirical_rates(SimulatedObjectDetector(MASK_RCNN, seed=0), "faucet")
        assert fpr == pytest.approx(MASK_RCNN.default.fpr, abs=0.02)

    def test_interior_tpr_dominates_long_episodes(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        tpr, _ = empirical_rates(detector, "faucet")
        # pooled TPR sits between the edge and interior rates
        assert MASK_RCNN.default.tpr - 0.05 <= tpr <= 1.0

    def test_yolo_noisier_than_maskrcnn(self):
        mask_tpr, mask_fpr = empirical_rates(
            SimulatedObjectDetector(MASK_RCNN, seed=0), "faucet"
        )
        yolo_tpr, yolo_fpr = empirical_rates(
            SimulatedObjectDetector(YOLOV3, seed=0), "faucet"
        )
        assert yolo_fpr > mask_fpr
        assert yolo_tpr < mask_tpr + 0.02

    def test_ideal_matches_truth_exactly(self):
        detector = SimulatedObjectDetector(IDEAL_OBJECT, seed=0)
        tpr, fpr = empirical_rates(detector, "faucet")
        assert tpr == 1.0
        assert fpr == 0.0


class TestDeterminismAndCaching:
    def test_score_video_cached_identity(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        a = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        b = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        assert a is b

    def test_same_seed_same_scores(self):
        a = SimulatedObjectDetector(MASK_RCNN, seed=0).score_video(
            VIDEO.meta, VIDEO.truth, "faucet"
        )
        b = SimulatedObjectDetector(MASK_RCNN, seed=0).score_video(
            VIDEO.meta, VIDEO.truth, "faucet"
        )
        assert (a == b).all()

    def test_different_seed_different_scores(self):
        a = SimulatedObjectDetector(MASK_RCNN, seed=0).score_video(
            VIDEO.meta, VIDEO.truth, "faucet"
        )
        b = SimulatedObjectDetector(MASK_RCNN, seed=1).score_video(
            VIDEO.meta, VIDEO.truth, "faucet"
        )
        assert not (a == b).all()

    def test_cache_clear(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        a = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        detector.cache_clear()
        b = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        assert a is not b and (a == b).all()


class TestAccessPaths:
    def test_score_frame_consistent_with_vector(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        scores = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        assert detector.score_frame(VIDEO.meta, VIDEO.truth, "faucet", 123) == scores[123]

    def test_score_clip_slices(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        scores = detector.score_video(VIDEO.meta, VIDEO.truth, "faucet")
        clip = detector.score_clip(VIDEO.meta, VIDEO.truth, "faucet", 2)
        assert (clip == scores[100:150]).all()

    def test_out_of_range_frame(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        with pytest.raises(DetectorError):
            detector.score_frame(VIDEO.meta, VIDEO.truth, "faucet", 10**7)

    def test_cost_charged(self):
        meter = CostMeter()
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0, cost_meter=meter)
        detector.score_clip(VIDEO.meta, VIDEO.truth, "faucet", 0)
        assert meter.units("MaskRCNN") == 50
        assert meter.ms("MaskRCNN") == pytest.approx(50 * MASK_RCNN.ms_per_unit)


class TestVocabulary:
    def test_closed_vocabulary_enforced(self):
        detector = SimulatedObjectDetector(
            MASK_RCNN, seed=0, vocabulary=frozenset({"faucet"})
        )
        with pytest.raises(DetectorError):
            detector.score_video(VIDEO.meta, VIDEO.truth, "zebra")

    def test_open_vocabulary_accepts_anything(self):
        detector = SimulatedObjectDetector(MASK_RCNN, seed=0)
        scores = detector.score_video(VIDEO.meta, VIDEO.truth, "zebra")
        # unknown label: pure background noise
        assert (scores >= detector.threshold).mean() < 0.1

    def test_wrong_profile_kind_rejected(self):
        with pytest.raises(DetectorError):
            SimulatedObjectDetector(I3D)
        with pytest.raises(DetectorError):
            SimulatedActionRecognizer(MASK_RCNN)


class TestActionRecognizer:
    def test_shot_granularity(self):
        recognizer = SimulatedActionRecognizer(I3D, seed=0)
        scores = recognizer.score_video(VIDEO.meta, VIDEO.truth, "washing dishes")
        assert scores.shape == (VIDEO.meta.n_shots,)

    def test_fires_inside_action(self):
        recognizer = SimulatedActionRecognizer(I3D, seed=0)
        scores = recognizer.score_video(VIDEO.meta, VIDEO.truth, "washing dishes")
        shots = VIDEO.truth.action_shots("washing dishes", VIDEO.meta.geometry)
        present = presence_mask(shots, VIDEO.meta.n_shots)
        firing = scores >= recognizer.threshold
        assert firing[present].mean() > 0.7
        assert firing[~present].mean() < 0.1
