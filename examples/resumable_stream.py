#!/usr/bin/env python
"""Checkpoint and resume a long-running streaming query.

Real deployments restart: here a streaming SVAQD session is checkpointed
mid-stream into a JSON file, "the process dies", and a fresh session
restores the dynamic state (kernel estimators, the open result run, the
guard-band lookahead) and continues — producing exactly the answer an
uninterrupted run would have.

Run:  python examples/resumable_stream.py
"""

import json
import tempfile
from pathlib import Path

from repro import OnlineConfig, Query, SceneSpec, SvaqdSession, TrackSpec, synthesize_video
from repro.core.svaqd import SVAQD
from repro.detectors.zoo import default_zoo
from repro.video.stream import ClipStream


def build_video():
    return synthesize_video(
        SceneSpec(
            video_id="long-stream",
            duration_s=480.0,
            tracks=(
                TrackSpec(label="loitering", kind="action",
                          occupancy=0.15, mean_duration_s=20.0),
                TrackSpec(label="person", kind="object",
                          correlate_with="loitering", correlation=0.95,
                          occupancy=0.2),
            ),
        ),
        seed=13,
    )


def main() -> None:
    video = build_video()
    query = Query(objects=["person"], action="loitering")
    config = OnlineConfig()
    checkpoint_path = Path(tempfile.gettempdir()) / "svqact-checkpoint.json"

    # --- phase 1: process half the stream, checkpoint, "crash" ----------
    zoo = default_zoo(seed=6)
    stream = ClipStream(video.meta)
    session = SvaqdSession(zoo, query, video, config)
    half = video.meta.n_clips // 2
    for _ in range(half):
        session.process(stream.next())
    checkpoint_path.write_text(json.dumps(session.state_dict()))
    print(f"checkpointed after clip {session.clip_index} "
          f"-> {checkpoint_path} ({checkpoint_path.stat().st_size} bytes)")
    del session  # the process dies here

    # --- phase 2: new process restores and continues ----------------------
    restored = SvaqdSession.from_state_dict(
        json.loads(checkpoint_path.read_text()),
        default_zoo(seed=6),  # same frozen models
        query, video, config,
    )
    print(f"resumed at clip {restored.clip_index}, "
          f"quotas {restored.quotas()}")
    while not stream.end():
        restored.process(stream.next())
    resumed_result = restored.finish()

    # --- compare with the uninterrupted run ------------------------------
    full = SVAQD(default_zoo(seed=6), query, config).run(video)
    print(f"resumed run found : {resumed_result.sequences.as_tuples()}")
    print(f"full run found    : {full.sequences.as_tuples()}")
    print(f"identical         : {resumed_result.sequences == full.sequences}")
    checkpoint_path.unlink()


if __name__ == "__main__":
    main()
