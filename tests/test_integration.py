"""Cross-module integration: the full online and offline pipelines, the
SQL front end, and persistence — exercised together on one scene."""

from __future__ import annotations

import pytest

from repro import (
    OfflineEngine,
    OnlineEngine,
    Query,
    VideoRepository,
    match_sequences,
    parse,
    plan,
)
from repro.detectors.zoo import default_zoo
from repro.video.datasets import DISTRACTOR_OBJECTS, build_movie, movie_by_title
from tests.conftest import make_kitchen_video


class TestOnlinePipeline:
    def test_stream_query_end_to_end(self, zoo):
        video = make_kitchen_video(seed=101, video_id="integration")
        query = Query(objects=["faucet", "person"], action="washing dishes")
        truth = video.truth.query_clips(
            ["faucet", "person"], "washing dishes", video.meta.geometry
        )
        engine = OnlineEngine(zoo=zoo)
        result = engine.run(query, video, algorithm="svaqd")
        report = match_sequences(result.sequences, truth)
        assert report.f1 >= 0.6

    def test_sql_to_stream(self, zoo):
        video = make_kitchen_video(seed=102, video_id="sqlvid")
        statement = parse(
            "SELECT MERGE(clipID) AS Sequence "
            "FROM (PROCESS sqlvid PRODUCE clipID, obj USING ObjectDetector, "
            "act USING ActionRecognizer) "
            "WHERE act='washing dishes' AND obj.include('faucet')"
        )
        result = plan(statement).execute_online(OnlineEngine(zoo=zoo), video)
        direct = OnlineEngine(zoo=zoo).run(
            Query(objects=["faucet"], action="washing dishes"), video
        )
        assert result.sequences == direct.sequences


class TestOfflinePipeline:
    @pytest.fixture(scope="class")
    def movie_engine(self):
        spec = movie_by_title("Coffee and Cigarettes")
        video = build_movie(spec, seed=7, scale=0.08)
        engine = OfflineEngine(zoo=default_zoo(seed=7))
        engine.ingest(
            video,
            object_labels=[*spec.objects, "person", *DISTRACTOR_OBJECTS],
            action_labels=[spec.action],
        )
        return engine

    def test_rvaq_equals_traverse_set(self, movie_engine):
        query = Query(objects=["wine glass", "cup"], action="smoking")
        rvaq = movie_engine.top_k(query, k=4, algorithm="rvaq")
        traverse = movie_engine.top_k(query, k=4, algorithm="pq-traverse")
        assert {r.interval for r in rvaq.ranked} == {
            r.interval for r in traverse.ranked
        }

    def test_sql_to_topk(self, movie_engine):
        statement = parse(
            "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
            "FROM (PROCESS repo PRODUCE clipID, obj USING ObjectTracker, "
            "act USING ActionRecognizer) "
            "WHERE act='smoking' AND obj.include('wine glass', 'cup') "
            "ORDER BY RANK(act, obj) LIMIT 3"
        )
        result = plan(statement).execute_offline(movie_engine)
        assert 0 < len(result.ranked) <= 3

    def test_persistence_roundtrip_preserves_answers(self, movie_engine, tmp_path):
        query = Query(objects=["wine glass", "cup"], action="smoking")
        before = movie_engine.top_k(query, k=3, algorithm="pq-traverse")
        movie_engine.repository.save(tmp_path)
        restored = VideoRepository.load(tmp_path)
        fresh = OfflineEngine(zoo=movie_engine.zoo, repository=restored)
        after = fresh.top_k(query, k=3, algorithm="pq-traverse")
        assert [r.interval for r in before.ranked] == [
            r.interval for r in after.ranked
        ]
        for a, b in zip(before.ranked, after.ranked):
            assert a.score == pytest.approx(b.score)

    def test_online_offline_consistency(self, movie_engine):
        """RVAQ's P_q derives from SVAQD per-label runs, so the offline
        result sequences must overlap what the online engine finds."""
        spec = movie_by_title("Coffee and Cigarettes")
        query = Query(objects=["wine glass", "cup"], action="smoking")
        video = movie_engine.video(spec.video_id)
        online = OnlineEngine(zoo=movie_engine.zoo).run(query, video)
        offline_pq = movie_engine.top_k(
            query, k=1, algorithm="pq-traverse"
        ).p_q
        if online.sequences and offline_pq:
            assert offline_pq.iou(online.sequences) > 0.3
