"""Synthetic repository construction shared by benchmarks and tests.

Hand-rolled :class:`~repro.storage.ingest.VideoIngest` objects with seeded
rng — no model zoo, no simulated inference — so the offline ranking and
storage paths can be exercised at repository scale in milliseconds.  The
generator is the one ``benchmarks/bench_offline_topk.py`` has always used
(dense overlapping runs, candidate-sequence count scaling with
``n_videos * n_clips``), factored here so the sharded equivalence suite
and the benchmark measure the exact same corpus.
"""

from __future__ import annotations

import numpy as np

from repro.storage.ingest import VideoIngest
from repro.storage.repository import VideoRepository
from repro.storage.table import ClipScoreTable
from repro.utils.intervals import IntervalSet

#: The labels every synthetic video carries (one action, one object) —
#: matching the benchmark's standing ``car & jumping`` query.
SYNTH_ACTION = "jumping"
SYNTH_OBJECT = "car"


def synthetic_ingest(
    video_id: str, n_clips: int, rng: np.random.Generator
) -> VideoIngest:
    """One synthetic video's ingest: random scores, dense run structure."""
    act_scores = np.round(rng.random(n_clips), 3)
    obj_scores = np.round(rng.random(n_clips), 3)

    def spans() -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        pos = 0
        while pos < n_clips:
            start = pos + int(rng.integers(0, 3))
            if start >= n_clips:
                break
            end = min(n_clips - 1, start + int(rng.integers(1, 5)))
            out.append((start, end))
            pos = end + 2
        return out or [(0, n_clips - 1)]

    return VideoIngest(
        video_id=video_id,
        n_clips=n_clips,
        object_tables={
            SYNTH_OBJECT: ClipScoreTable(
                SYNTH_OBJECT, list(enumerate(obj_scores))
            )
        },
        action_tables={
            SYNTH_ACTION: ClipScoreTable(
                SYNTH_ACTION, list(enumerate(act_scores))
            )
        },
        object_sequences={SYNTH_OBJECT: IntervalSet(spans())},
        action_sequences={SYNTH_ACTION: IntervalSet(spans())},
    )


def synthetic_repository(
    n_videos: int, n_clips: int, seed: int
) -> VideoRepository:
    """Synthetic multi-video repository with dense overlapping runs, so
    the candidate-sequence count scales with ``n_videos * n_clips``."""
    rng = np.random.default_rng(seed)
    repo = VideoRepository()
    for v in range(n_videos):
        repo.add(synthetic_ingest(f"v{v}", n_clips, rng))
    return repo
