"""Deterministic fault injection for the simulated model substrate.

Standing queries run for days against flaky detector infrastructure; the
failure modes that matter in production — transient backend errors, call
timeouts, stuck (stale) outputs, corrupted NaN scores — must be
*reproducible* to be testable.  :class:`FaultInjector` wraps any of the
simulated models behind the same scoring interface and injects failures as
a pure function of ``(seed, model, method, video, label, unit, attempt)``:

* the same seed replays the exact same failure sequence, call for call;
* a **retry of the same invocation** rolls the next ``attempt`` index, so
  transient faults really are transient — the retry layer can recover;
* faults on one ``(video, label, clip)`` are independent of every other,
  so a session resumed from a checkpoint sees, for the clips it has not
  yet processed, exactly the faults the uninterrupted run would have seen
  (on the per-clip ``score_clip`` path, whose fault keys are per clip).

``faulty_zoo`` wraps a whole :class:`~repro.detectors.zoo.ModelZoo`;
named :data:`FAULT_PROFILES` back the CLI's ``--fault-profile`` knob and
the chaos benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Callable

import numpy as np

from repro.detectors.zoo import ModelZoo
from repro.errors import (
    ConfigurationError,
    ModelTimeoutError,
    TransientModelError,
)
from repro.utils.rng import derive_rng

__all__ = [
    "FaultProfile",
    "FaultInjector",
    "faulty_zoo",
    "FAULT_PROFILES",
    "NO_FAULTS",
]

#: Injected failure modes, in cumulative-probability order.
_MODES = ("transient", "timeout", "nan", "stuck")


@dataclass(frozen=True)
class FaultProfile:
    """One reproducible failure regime.

    Rates are per *invocation attempt* and mutually exclusive (their sum
    must stay below 1); ``dead_labels`` hard-fail every attempt — the
    knob for testing degradation policies, since no amount of retrying
    recovers a dead model.
    """

    name: str = "custom"
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    nan_rate: float = 0.0
    stuck_rate: float = 0.0
    dead_labels: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        total = 0.0
        for mode in _MODES:
            rate = getattr(self, f"{mode}_rate")
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"{mode}_rate must be in [0, 1); got {rate}"
                )
            total += rate
        if total >= 1.0:
            raise ConfigurationError(
                f"fault rates must sum below 1; got {total}"
            )

    @property
    def active(self) -> bool:
        """Whether this profile can inject anything at all."""
        return bool(self.dead_labels) or any(
            getattr(self, f"{mode}_rate") > 0.0 for mode in _MODES
        )

    def with_seed(self, seed: int) -> "FaultProfile":
        return dataclass_replace(self, seed=seed)


NO_FAULTS = FaultProfile(name="none")

#: Named regimes for ``--fault-profile`` and the chaos CI smoke runs.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": NO_FAULTS,
    "transient": FaultProfile(
        name="transient", transient_rate=0.05, timeout_rate=0.02
    ),
    "flaky": FaultProfile(
        name="flaky", transient_rate=0.10, timeout_rate=0.05, nan_rate=0.03
    ),
    "chaos": FaultProfile(
        name="chaos",
        transient_rate=0.12,
        timeout_rate=0.05,
        nan_rate=0.05,
        stuck_rate=0.05,
    ),
}


def fault_profile(spec: str | FaultProfile | None) -> FaultProfile:
    """Resolve a profile name (CLI string) or pass a profile through."""
    if spec is None:
        return NO_FAULTS
    if isinstance(spec, FaultProfile):
        return spec
    try:
        return FAULT_PROFILES[spec]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault profile {spec!r}; "
            f"known: {', '.join(sorted(FAULT_PROFILES))}"
        ) from None


class FaultInjector:
    """Wraps one simulated model and injects the profile's failures.

    The wrapper is transparent — every attribute not intercepted here
    (``name``, ``profile``, ``threshold``, ``vocabulary``, caches, ...)
    forwards to the wrapped model, so it drops into a
    :class:`~repro.detectors.zoo.ModelZoo` slot unchanged.  Per-invocation
    attempt counters are the only mutable state; they reset with the
    process, which is exactly what makes replay deterministic.
    """

    def __init__(self, inner: Any, profile: FaultProfile) -> None:
        self._inner = inner
        self._fault_profile = profile
        #: (method, video_id, label, unit) -> next attempt index.
        self._attempts: dict[tuple, int] = {}
        #: mode -> injected-fault count (diagnostics and tests).
        self.fault_counts: dict[str, int] = {mode: 0 for mode in _MODES}

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") or name in ("_inner",):
            raise AttributeError(name)
        return getattr(self.__dict__["_inner"], name)

    @property
    def inner(self) -> Any:
        """The wrapped (fault-free) model."""
        return self._inner

    @property
    def injected_faults(self) -> int:
        return sum(self.fault_counts.values())

    def reset_attempts(self) -> None:
        """Forget attempt history (tests replaying from a clean slate)."""
        self._attempts.clear()
        for mode in self.fault_counts:
            self.fault_counts[mode] = 0

    # -- the fault roll ----------------------------------------------------------

    def _roll(self, method: str, video_id: str, label: str, unit: object) -> str | None:
        """Decide this attempt's fate; ``None`` means a clean call."""
        profile = self._fault_profile
        if label in profile.dead_labels:
            self.fault_counts["transient"] += 1
            raise TransientModelError(
                f"{self._inner.name}: backend for label {label!r} is down "
                f"({method} on {video_id!r}/{unit})"
            )
        key = (method, video_id, label, unit)
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        draw = float(
            derive_rng(
                profile.seed, "fault", self._inner.name,
                method, video_id, label, unit, attempt,
            ).random()
        )
        edge = 0.0
        for mode in _MODES:
            edge += getattr(profile, f"{mode}_rate")
            if draw < edge:
                self.fault_counts[mode] += 1
                return mode
        return None

    def _apply(
        self,
        method: str,
        video_id: str,
        label: str,
        unit: object,
        call: Callable[[], Any],
        stale_call: Callable[[], Any] | None = None,
    ) -> Any:
        """Run one wrapped invocation under the profile.

        ``stale_call`` produces the stuck-output payload (the previous
        unit's answer); when unavailable the stuck mode degrades to a
        clean call — stale data needs a past to be stale relative to.
        """
        mode = self._roll(method, video_id, label, unit)
        if mode == "transient":
            raise TransientModelError(
                f"{self._inner.name}: transient failure "
                f"({method} on {video_id!r}/{label}/{unit})"
            )
        if mode == "timeout":
            raise ModelTimeoutError(
                f"{self._inner.name}: call deadline exceeded "
                f"({method} on {video_id!r}/{label}/{unit})"
            )
        if mode == "stuck" and stale_call is not None:
            return stale_call()
        value = call()
        if mode == "nan":
            return self._corrupt(value, video_id, label, unit)
        return value

    def _corrupt(
        self, scores: np.ndarray, video_id: str, label: str, unit: object
    ) -> np.ndarray:
        """A NaN-speckled *copy* (the wrapped model memoises its arrays —
        corrupting in place would poison every later clean call)."""
        rng = derive_rng(
            self._fault_profile.seed, "nan", self._inner.name,
            video_id, label, unit,
        )
        corrupted = np.array(scores, dtype=float, copy=True)
        if corrupted.size:
            mask = rng.random(corrupted.size) < 0.25
            if not mask.any():
                mask[int(rng.integers(corrupted.size))] = True
            corrupted[mask.reshape(corrupted.shape)] = np.nan
        return corrupted


class FaultyObjectDetector(FaultInjector):
    """Fault-injecting proxy over a per-frame object detector."""

    def score_video(self, video: Any, truth: Any, label: str) -> Any:
        return self._apply(
            "score_video", video.video_id, label, "video",
            lambda: self._inner.score_video(video, truth, label),
        )

    def score_frame(self, video: Any, truth: Any, label: str, frame: int) -> Any:
        return self._apply(
            "score_frame", video.video_id, label, frame,
            lambda: self._inner.score_frame(video, truth, label, frame),
            stale_call=(
                (lambda: self._inner.score_frame(video, truth, label, frame - 1))
                if frame > 0 else None
            ),
        )

    def score_clip(self, video: Any, truth: Any, label: str, clip_id: int) -> Any:
        return self._apply(
            "score_clip", video.video_id, label, clip_id,
            lambda: self._inner.score_clip(video, truth, label, clip_id),
            stale_call=(
                (lambda: self._inner.score_clip(video, truth, label, clip_id - 1))
                if clip_id > 0 else None
            ),
        )


class FaultyActionRecognizer(FaultInjector):
    """Fault-injecting proxy over a per-shot action recognizer."""

    def score_video(self, video: Any, truth: Any, label: str) -> Any:
        return self._apply(
            "score_video", video.video_id, label, "video",
            lambda: self._inner.score_video(video, truth, label),
        )

    def score_shot(self, video: Any, truth: Any, label: str, shot: int) -> Any:
        return self._apply(
            "score_shot", video.video_id, label, shot,
            lambda: self._inner.score_shot(video, truth, label, shot),
            stale_call=(
                (lambda: self._inner.score_shot(video, truth, label, shot - 1))
                if shot > 0 else None
            ),
        )

    def score_clip(self, video: Any, truth: Any, label: str, clip_id: int) -> Any:
        return self._apply(
            "score_clip", video.video_id, label, clip_id,
            lambda: self._inner.score_clip(video, truth, label, clip_id),
            stale_call=(
                (lambda: self._inner.score_clip(video, truth, label, clip_id - 1))
                if clip_id > 0 else None
            ),
        )


class FaultyTracker(FaultInjector):
    """Fault-injecting proxy over an object tracker (NaN mode does not
    apply to track lists; such draws fall through to clean calls)."""

    def tracks_in_clip(self, video: Any, truth: Any, label: str, clip: Any) -> Any:
        clip_id = clip.clip_id

        def stale() -> Any:
            from repro.video.model import ClipView

            return self._inner.tracks_in_clip(
                video, truth, label, ClipView(video, clip_id - 1)
            )

        mode = self._roll("tracks_in_clip", video.video_id, label, clip_id)
        if mode == "transient":
            raise TransientModelError(
                f"{self._inner.name}: transient failure "
                f"(tracks_in_clip on {video.video_id!r}/{label}/{clip_id})"
            )
        if mode == "timeout":
            raise ModelTimeoutError(
                f"{self._inner.name}: call deadline exceeded "
                f"(tracks_in_clip on {video.video_id!r}/{label}/{clip_id})"
            )
        if mode == "stuck" and clip_id > 0:
            return stale()
        return self._inner.tracks_in_clip(video, truth, label, clip)


def faulty_zoo(zoo: ModelZoo, profile: FaultProfile | str) -> ModelZoo:
    """A zoo whose three models fail according to ``profile``.

    With an inactive profile the zoo is returned unwrapped, so
    ``faulty_zoo(zoo, "none")`` is exactly the fault-free line-up.
    """
    profile = fault_profile(profile)
    if not profile.active:
        return zoo
    return ModelZoo(
        detector=FaultyObjectDetector(zoo.detector, profile),
        recognizer=FaultyActionRecognizer(zoo.recognizer, profile),
        tracker=FaultyTracker(zoo.tracker, profile),
        cost_meter=zoo.cost_meter,
    )
