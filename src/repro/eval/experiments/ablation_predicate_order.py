"""Ablation — predicate evaluation order (footnote 5).

Algorithm 2 evaluates predicates sequentially and short-circuits on the
first negative, so evaluating the most selective predicate first saves
model invocations; the paper defers the ordering question to future work
and uses "user expertise".  This ablation measures the inference cost of
three policies on the same queries:

* ``user``        — the order the query was written in;
* ``selective``   — ascending empirical clip-level selectivity (cheapest);
* ``anti``        — descending selectivity (worst case).

Expected shape: results are identical across orders (conjunction is
commutative); inference cost differs — selective ≤ user ≤ anti.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import OnlineConfig
from repro.core.indicators import ClipEvaluator
from repro.core.query import Query
from repro.core.sequences import SequenceAssembler
from repro.core.svaq import SVAQ
from repro.detectors.zoo import ModelZoo, default_zoo
from repro.utils.intervals import IntervalSet
from repro.utils.tables import render_table
from repro.video.synthesis import LabeledVideo
from repro.video.datasets import build_youtube_set, youtube_set_by_id
from repro.video.stream import ClipStream

QUERY = Query(objects=["person", "faucet", "oven"], action="washing dishes")


@dataclass(frozen=True)
class OrderAblationResult:
    rows: tuple[tuple[str, float, bool], ...]  # policy, cost ms, same result

    def render(self) -> str:
        return render_table(
            ["policy", "inference cost (simulated ms)", "same answers"],
            self.rows,
            title="Ablation — predicate evaluation order (footnote 5)",
            precision=0,
        )

    def cost(self, policy: str) -> float:
        for name, cost, _ in self.rows:
            if name == policy:
                return cost
        raise KeyError(policy)


def _run_with_order(
    zoo: ModelZoo,
    video: LabeledVideo,
    query: Query,
    config: OnlineConfig,
    order: Sequence[str],
) -> IntervalSet:
    """SVAQ's loop with an explicit predicate evaluation order."""
    evaluator = ClipEvaluator(zoo, video.meta, video.truth, query, config)
    k_crit = SVAQ(zoo, query, config).initial_critical_values(video.meta.geometry)
    assembler = SequenceAssembler()
    stream = ClipStream(video.meta)
    while not stream.end():
        clip = stream.next()
        evaluation = evaluator.evaluate(clip.clip_id, k_crit, order=order)
        assembler.push(clip.clip_id, evaluation.positive)
    assembler.finish()
    return assembler.result()


def _selectivity_order(
    zoo: ModelZoo,
    videos: Sequence[LabeledVideo],
    query: Query,
    config: OnlineConfig,
) -> list[str]:
    """Estimate per-predicate clip-level selectivity on the first video and
    order ascending (most selective predicate first)."""
    probe = SVAQ(zoo, query, config).run(videos[0], short_circuit=False)
    rates = {
        label: probe.predicate_indicator_rate(label)
        for label in query.all_labels
    }
    return sorted(rates, key=rates.get)


def run(seed: int = 0, scale: float = 0.12) -> OrderAblationResult:
    config = OnlineConfig().with_p0(1e-2)
    videos = build_youtube_set(youtube_set_by_id("q1"), seed, scale).videos
    zoo = default_zoo(seed=seed)
    selective = _selectivity_order(zoo, videos, QUERY, config)
    orders = {
        "user": list(QUERY.all_labels),
        "selective": selective,
        "anti": list(reversed(selective)),
    }
    results: dict[str, list[IntervalSet]] = {}
    costs: dict[str, float] = {}
    for policy, order in orders.items():
        # Fresh zoo per policy so the cost meter isolates each run (scores
        # are deterministic in the seed, so answers stay comparable).
        policy_zoo = default_zoo(seed=seed)
        found = []
        for video in videos:
            found.append(_run_with_order(policy_zoo, video, QUERY, config, order))
        results[policy] = found
        costs[policy] = policy_zoo.cost_meter.ms()
    baseline = results["user"]
    rows = tuple(
        (policy, costs[policy], results[policy] == baseline)
        for policy in orders
    )
    return OrderAblationResult(rows=rows)
