"""RL002 checkpoint-completeness: ``state_dict`` covers every attribute.

Checkpoint/resume (PR 1) and fault replay (PR 4) depend on a class's
``state_dict`` round-tripping *all* of its mutable state: an attribute
added to ``__init__`` but forgotten in ``state_dict`` resumes with a
stale default and silently diverges from the uninterrupted run.

The rule fires on any class that defines ``state_dict`` together with a
restore method (``load_state_dict`` or ``from_state_dict``) and has an
``__init__``-assigned ``self.*`` attribute that is neither referenced in
any of those methods nor listed in an explicit class-level
``_CHECKPOINT_EXCLUDE`` — the documented opt-out for attributes that are
reconstructed from constructor arguments rather than checkpointed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.base import (
    Finding,
    LintContext,
    Rule,
    iter_assigned_self_attrs,
    register,
)

_STATE_METHODS = ("state_dict", "load_state_dict", "from_state_dict")
_EXCLUDE_ATTR = "_CHECKPOINT_EXCLUDE"


@register
@dataclass
class CheckpointCompletenessRule(Rule):
    code: str = "RL002"
    name: str = "checkpoint-completeness"
    rationale: str = (
        "an attribute missing from state_dict resumes stale and makes "
        "a restored run diverge from the uninterrupted one"
    )
    scopes: tuple[tuple[str, ...], ...] = (("repro",),)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "state_dict" not in methods:
            return
        if not any(name in methods for name in _STATE_METHODS[1:]):
            return
        init = methods.get("__init__")
        if init is None:
            return

        covered = self._excluded_names(cls)
        for name in _STATE_METHODS:
            method = methods.get(name)
            if method is None:
                continue
            # Any attribute *mentioned* in the checkpoint methods counts as
            # covered — read in state_dict, or rebuilt/reset in the restore
            # path — regardless of which local name holds the instance
            # (``self`` in methods, a constructed object in classmethods).
            for sub in ast.walk(method):
                if isinstance(sub, ast.Attribute):
                    covered.add(sub.attr)

        seen: set[str] = set()
        for attr, lineno in iter_assigned_self_attrs(init):
            if attr in covered or attr in seen:
                continue
            seen.add(attr)
            yield Finding(
                path=ctx.path,
                line=lineno,
                col=1,
                code=self.code,
                message=(
                    f"attribute self.{attr} is assigned in {cls.name}.__init__ "
                    "but neither referenced by its checkpoint methods "
                    f"({'/'.join(n for n in _STATE_METHODS if n in methods)}) "
                    f"nor listed in {cls.name}.{_EXCLUDE_ATTR}; checkpoint it "
                    "or declare it reconstructed-by-the-caller"
                ),
                context=f"{cls.name}.__init__",
            )

    @staticmethod
    def _excluded_names(cls: ast.ClassDef) -> set[str]:
        """String entries of a class-level ``_CHECKPOINT_EXCLUDE`` literal."""
        names: set[str] = set()
        for stmt in cls.body:
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == _EXCLUDE_ATTR
                for t in stmt.targets
            ):
                value = stmt.value
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == _EXCLUDE_ATTR
            ):
                value = stmt.value
            if value is None:
                continue
            if isinstance(value, ast.Call) and value.args:
                # frozenset({...}) / tuple([...]) wrappers
                value = value.args[0]
            if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        names.add(elt.value)
        return names
