"""Simulated vision-model substrate.

The paper treats object detectors, action recognisers and trackers as black
boxes ("our proposals are orthogonal to the underlying models").  This
subpackage provides black boxes with the same interfaces and calibrated
noise behaviour — per-frame object scores, per-shot action scores and
tracked object instances — driven by the synthetic ground truth instead of
pixels.  Profiles approximating the accuracy ordering of the paper's model
line-up (Mask R-CNN > YOLOv3; I3D; CenterTrack; Ideal) live in
:mod:`repro.detectors.profiles`.
"""

from repro.detectors.base import (
    ActionRecognizer,
    Detection,
    ObjectDetector,
    ObjectTracker,
    TrackedDetection,
)
from repro.detectors.cost import CostMeter
from repro.detectors.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    fault_profile,
    faulty_zoo,
)
from repro.detectors.profiles import (
    CENTERTRACK,
    I3D,
    IDEAL_ACTION,
    IDEAL_OBJECT,
    IDEAL_TRACKER,
    MASK_RCNN,
    YOLOV3,
    DetectorProfile,
)
from repro.detectors.simulated import (
    SimulatedActionRecognizer,
    SimulatedObjectDetector,
)
from repro.detectors.retry import RetryPolicy, invoke_with_retry
from repro.detectors.tracker import SimulatedTracker
from repro.detectors.zoo import ModelZoo, default_zoo, ideal_zoo

__all__ = [
    "Detection",
    "TrackedDetection",
    "ObjectDetector",
    "ActionRecognizer",
    "ObjectTracker",
    "DetectorProfile",
    "MASK_RCNN",
    "YOLOV3",
    "I3D",
    "CENTERTRACK",
    "IDEAL_OBJECT",
    "IDEAL_ACTION",
    "IDEAL_TRACKER",
    "SimulatedObjectDetector",
    "SimulatedActionRecognizer",
    "SimulatedTracker",
    "CostMeter",
    "ModelZoo",
    "default_zoo",
    "ideal_zoo",
    "FaultProfile",
    "FaultInjector",
    "FAULT_PROFILES",
    "fault_profile",
    "faulty_zoo",
    "RetryPolicy",
    "invoke_with_retry",
]
