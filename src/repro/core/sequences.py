"""Result-sequence assembly (Eq. 4) for streaming and batch use.

Positive clips are merged into maximal runs — the *result sequences*
``P_q = {(c_l, c_r)}``.  The batch form is a one-liner over
:class:`repro.utils.intervals.IntervalSet`; the streaming form below tracks
the open run so the online engines can *emit* each sequence the moment it
closes, which is what "reporting results as the video streams" requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import VideoModelError
from repro.utils.intervals import Interval, IntervalSet
from repro._typing import StateDict


@dataclass
class SequenceAssembler:
    """Streaming merger of per-clip indicators into result sequences.

    Feed ``push(clip_id, positive)`` in clip order; completed sequences are
    appended to :attr:`closed` (and passed to ``on_emit`` if given) as soon
    as the first negative clip after a positive run arrives.  ``finish()``
    closes a run that reaches the end of the stream.
    """

    on_emit: Callable[[Interval], None] | None = None
    closed: list[Interval] = field(default_factory=list)
    _run_start: int | None = field(default=None, repr=False)
    _last_clip: int | None = field(default=None, repr=False)
    _finished: bool = field(default=False, repr=False)

    def push(self, clip_id: int, positive: bool) -> Interval | None:
        """Record one clip; returns the sequence this clip just closed,
        if any."""
        if self._finished:
            raise VideoModelError("push() after finish()")
        if self._last_clip is not None and clip_id != self._last_clip + 1:
            raise VideoModelError(
                f"clips must arrive in order; got {clip_id} after {self._last_clip}"
            )
        self._last_clip = clip_id
        emitted: Interval | None = None
        if positive:
            if self._run_start is None:
                self._run_start = clip_id
        elif self._run_start is not None:
            emitted = Interval(self._run_start, clip_id - 1)
            self._emit(emitted)
            self._run_start = None
        return emitted

    def finish(self) -> Interval | None:
        """Close the stream; returns the final open sequence, if any."""
        if self._finished:
            return None
        self._finished = True
        if self._run_start is None or self._last_clip is None:
            return None
        emitted = Interval(self._run_start, self._last_clip)
        self._emit(emitted)
        self._run_start = None
        return emitted

    def _emit(self, interval: Interval) -> None:
        self.closed.append(interval)
        if self.on_emit is not None:
            self.on_emit(interval)

    def result(self) -> IntervalSet:
        """All sequences emitted so far as an interval set (``P_q``)."""
        return IntervalSet(self.closed)

    # -- checkpointing -------------------------------------------------------------

    def state_dict(self) -> StateDict:
        """JSON-serialisable snapshot: closed sequences, the open run and
        the last clip seen — everything the merge logic depends on."""
        return {
            "closed": [iv.as_tuple() for iv in self.closed],
            "run_start": self._run_start,
            "last_clip": self._last_clip,
            "finished": self._finished,
        }

    @classmethod
    def from_state_dict(
        cls,
        state: StateDict,
        on_emit: Callable[[Interval], None] | None = None,
    ) -> "SequenceAssembler":
        """Rebuild an assembler from :meth:`state_dict` output.

        Restored sequences are *not* re-emitted through ``on_emit``; only
        sequences closed after the restore point fire the callback.
        """
        assembler = cls(on_emit=on_emit)
        assembler.closed.extend(
            Interval(start, end) for start, end in state["closed"]
        )
        assembler._run_start = state["run_start"]
        assembler._last_clip = state["last_clip"]
        assembler._finished = bool(state.get("finished", False))
        return assembler


def merge_indicators(flags: Iterable[bool], offset: int = 0) -> IntervalSet:
    """Batch Eq. 4: merge an indicator sequence into result sequences."""
    return IntervalSet.from_indicator(list(flags), offset=offset)
