"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDemo:
    def test_runs_and_reports(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "ground truth" in out and "F1" in out


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6_movie_topk" in out
        assert "q12: archery" in out
        assert "Coffee and Cigarettes" in out


class TestQuery:
    def test_online_query(self, capsys):
        sql = (
            "SELECT MERGE(clipID) FROM (PROCESS movie PRODUCE clipID, "
            "obj USING ObjectDetector, act USING ActionRecognizer) "
            "WHERE act='smoking' AND obj.include('cup')"
        )
        assert main(["query", sql, "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "mode=online" in out
        assert "sequences:" in out

    def test_offline_query(self, capsys):
        sql = (
            "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS movie "
            "PRODUCE clipID, obj USING ObjectTracker, act USING "
            "ActionRecognizer) WHERE act='smoking' AND "
            "obj.include('wine glass', 'cup') "
            "ORDER BY RANK(act, obj) LIMIT 3"
        )
        assert main(["query", sql, "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "mode=offline" in out
        assert "random" in out


class TestExperiment:
    def test_known_experiment(self, capsys):
        assert main(
            ["experiment", "ablation_markov", "--seed", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Markov" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_forwarded(self, capsys):
        assert main(
            ["experiment", "table4_models", "--scale", "0.05"]
        ) == 0
        assert "Ideal Models" in capsys.readouterr().out


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "report", "--out", str(out), "--scale", "0.05",
            "--only", "table4_models", "ablation_markov",
        ]) == 0
        text = out.read_text()
        assert "table4_models" in text
        assert "ablation_markov" in text
        assert "fig2_background_prob" not in text
        assert "regenerated in" in text
