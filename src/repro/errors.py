"""Exception hierarchy for the svq-act reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Sub-classes are
grouped by the layer that raises them (configuration, data model, query
language, storage, statistics).
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An engine, detector or dataset was configured with invalid values."""


class IntervalError(ReproError, ValueError):
    """An interval was constructed or combined in an invalid way."""


class VideoModelError(ReproError, ValueError):
    """Frame/shot/clip geometry is inconsistent (e.g. clip not a multiple
    of the shot length)."""


class GroundTruthError(ReproError, ValueError):
    """Ground-truth annotations are malformed (unknown label, interval
    outside the video, overlapping spans for one label)."""


class DetectorError(ReproError, RuntimeError):
    """A simulated detection model was used incorrectly (e.g. asked to score
    a label outside its vocabulary)."""


class ModelExecutionError(ReproError, RuntimeError):
    """A deployed model failed *at inference time* — the infrastructure
    failures (backend errors, timeouts, corrupted outputs) the
    fault-tolerance layer retries and degrades around, as opposed to
    :class:`DetectorError` which flags caller bugs."""


class TransientModelError(ModelExecutionError):
    """A model invocation failed transiently (flaky backend, dropped RPC);
    retrying the same call may succeed."""


class ModelTimeoutError(ModelExecutionError):
    """A model invocation exceeded its (simulated or configured) deadline."""


class CorruptedOutputError(ModelExecutionError):
    """A model returned unusable output (non-finite scores); the attempt
    is treated as failed and may be retried."""


class ModelGaveUpError(ModelExecutionError):
    """Retries were exhausted (or the per-call deadline passed) without a
    usable model answer.  ``last_error`` holds the final attempt's failure."""

    def __init__(self, message: str, last_error: Exception | None = None) -> None:
        super().__init__(message)
        self.last_error = last_error


class QueryError(ReproError, ValueError):
    """A query object is malformed (no action, duplicate predicates, labels
    outside the deployed models' vocabularies)."""


class AdmissionError(ReproError, RuntimeError):
    """The streaming query service refused a registration.

    Raised by per-tenant admission control when a tenant is at its
    concurrent-query quota or has exhausted its model-unit budget.  The
    message names the tenant and the limit that was hit; already-running
    queries are never affected by an admission rejection."""


class ScanStatisticsError(ReproError, ValueError):
    """Scan-statistics routines received out-of-domain parameters
    (probabilities outside (0, 1), non-positive window sizes, ...)."""


class StorageError(ReproError, RuntimeError):
    """Offline storage misuse: unknown video/label tables, access to a
    table row that does not exist, repository state violations."""


class IngestError(StorageError):
    """The ingestion phase failed (video already ingested, empty video)."""


class IngestBatchError(IngestError):
    """One or more videos of an ``ingest_many`` batch failed.

    Raised only under ``on_error="raise"`` — *after* every completed
    worker's cost charges were merged back into the shared meter.
    ``outcomes`` carries the full per-video outcome list (successes
    included) so callers can salvage the completed ingests.
    """

    def __init__(self, message: str, outcomes: list[Any] | None = None) -> None:
        super().__init__(message)
        self.outcomes = outcomes or []


class SqlSyntaxError(ReproError, ValueError):
    """The SQL-like query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanningError(ReproError, ValueError):
    """A parsed query could not be translated into an executable plan."""


class EvaluationError(ReproError, ValueError):
    """Metric computation received inconsistent inputs."""
