"""Table 4 — F1 under different detection model line-ups."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import table4_models

_result = None


def compute():
    global _result
    if _result is None:
        _result = table4_models.run(seed=BENCH_SEED, scale=BENCH_SCALE)
        publish("table4_models", _result.render())
    return _result


def test_table4_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    for algorithm in ("SVAQ", "SVAQD"):
        ideal = result.f1(algorithm, "Ideal Models")
        mask = result.f1(algorithm, "MaskRCNN+I3D")
        yolo = result.f1(algorithm, "YOLOv3+I3D")
        assert ideal >= mask - 1e-9
        assert ideal >= yolo - 1e-9
        assert ideal >= 0.9  # residual = annotation-boundary effects only
        assert mask >= yolo - 0.05  # more accurate detector at least ties
