"""Multi-tenant streaming query service over the online engines.

The batch engines answer a query and exit; a monitoring deployment runs
*standing* queries over live feeds — registered and cancelled while the
stream runs, with results pushed as they close and the whole service
migratable between processes mid-stream.  This package is that layer:

* :class:`QueryService` — the asyncio service core (streams, stepping,
  result push, snapshot/resume);
* :class:`ServiceClient` — a tenant's in-process handle;
* :class:`AdmissionController` / :class:`TenantQuota` — per-tenant
  admission control at the registration boundary;
* :class:`QueryRegistry` — the cross-stream book of record;
* :class:`ServiceState` — the versioned migration bundle.

See DESIGN.md § "Service layer" for the lifecycle and bundle format.
"""

from repro.service.admission import AdmissionController, TenantQuota
from repro.service.client import ServiceClient
from repro.service.migration import SERVICE_BUNDLE_VERSION, ServiceState
from repro.service.registry import QueryRegistry, RegisteredQuery
from repro.service.service import QueryService, ResultEvent

__all__ = [
    "QueryService",
    "ServiceClient",
    "ResultEvent",
    "AdmissionController",
    "TenantQuota",
    "QueryRegistry",
    "RegisteredQuery",
    "ServiceState",
    "SERVICE_BUNDLE_VERSION",
]
