"""Service migration: one JSON bundle, result-identical resume."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.engine import OnlineEngine
from repro.core.query import Query
from repro.core.scheduler import MultiQueryScheduler, QuerySpec
from repro.detectors.zoo import default_zoo
from repro.errors import AdmissionError, ConfigurationError
from repro.service import (
    SERVICE_BUNDLE_VERSION,
    AdmissionController,
    QueryService,
    ServiceClient,
    ServiceState,
    TenantQuota,
)
from repro.service.registry import QUERY_CANCELLED
from tests.conftest import make_kitchen_video

VIDEO = make_kitchen_video(seed=47, duration_s=240.0, video_id="migvid")
VIDEO_B = make_kitchen_video(seed=48, duration_s=120.0, video_id="migvid-b")
QUERIES = [
    QuerySpec("faucet", Query(objects=["faucet"], action="washing dishes")),
    QuerySpec(
        "person",
        Query(objects=["person"], action="washing dishes"),
        algorithm="svaq",
    ),
]


def finish(service):
    asyncio.run(service.serve())


class TestSnapshotResume:
    def _build(self, *, admission=None):
        service = QueryService(
            default_zoo(seed=3), admission=admission, clip_batch=4
        )
        service.add_stream("cam", VIDEO)
        service.add_stream("door", VIDEO_B)
        for spec in QUERIES:
            service.register("cam", spec, tenant="acme")
        service.register("door", QUERIES[0], tenant="acme")
        return service

    def test_resumed_service_is_result_identical(self):
        service = self._build()
        service.step("cam")
        service.step("door")
        service.step("cam")
        bundle = json.loads(json.dumps(service.snapshot().to_dict()))

        resumed = QueryService.resume(
            bundle,
            {"cam": VIDEO, "door": VIDEO_B},
            default_zoo(seed=3),
            clip_batch=4,
        )
        assert resumed.position("cam") == 8
        assert resumed.position("door") == 4
        assert resumed.live("cam") == ("faucet", "person")
        finish(resumed)

        # The reference runs the same specs (same algorithms) batch-style.
        reference = MultiQueryScheduler(default_zoo(seed=3), QUERIES).run(
            VIDEO
        )
        for spec in QUERIES:
            assert resumed.result("cam", spec.name).sequences == (
                reference[spec.name].sequences
            )
        door_reference = OnlineEngine(
            zoo=default_zoo(seed=3)
        ).run_queries([QUERIES[0].query], VIDEO_B)
        assert resumed.result("door", "faucet").sequences == (
            door_reference["q0"].sequences
        )

    def test_resume_pushes_only_post_snapshot_sequences(self):
        service = self._build()

        async def pre_snapshot():
            queue = service.subscribe("cam", "faucet")
            for _ in range(3):
                service.step("cam")
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            return [(e.interval.start, e.interval.end) for e in events]

        before = asyncio.run(pre_snapshot())
        bundle = service.snapshot().to_dict()
        resumed = QueryService.resume(
            bundle, {"cam": VIDEO, "door": VIDEO_B}, default_zoo(seed=3)
        )
        client = ServiceClient(resumed, tenant="acme")

        async def main():
            task = asyncio.create_task(client.collect("cam", "faucet"))
            await asyncio.sleep(0)
            await resumed.serve()
            return await task

        pushed, final = asyncio.run(main())
        after = [(iv.start, iv.end) for iv in pushed]
        # Restored sequences are not re-emitted: the resumed service
        # pushes only the suffix, and the two processes' pushes together
        # are exactly the final result — nothing lost, nothing doubled.
        assert before + after == final.sequences.as_tuples()

    def test_snapshot_freezes_the_source_service(self):
        service = self._build()
        service.step("cam")
        service.snapshot()
        with pytest.raises(ConfigurationError, match="snapshotted"):
            service.step("cam")

    def test_resume_requires_every_bundled_video(self):
        service = self._build()
        bundle = service.snapshot().to_dict()
        with pytest.raises(ConfigurationError, match="no video"):
            QueryService.resume(bundle, {"cam": VIDEO}, default_zoo(seed=3))

    def test_registry_history_survives_migration(self):
        service = self._build()
        service.step("cam")
        service.cancel("cam", "person")
        bundle = json.loads(json.dumps(service.snapshot().to_dict()))
        resumed = QueryService.resume(
            bundle, {"cam": VIDEO, "door": VIDEO_B}, default_zoo(seed=3)
        )
        assert resumed.registry.get("cam", "person").status == (
            QUERY_CANCELLED
        )
        assert resumed.live("cam") == ("faucet",)
        # The cancelled name stays burned on the resumed service too.
        with pytest.raises(ConfigurationError, match="duplicate"):
            resumed.register("cam", QUERIES[1], tenant="acme")

    def test_admission_ledgers_survive_migration(self):
        admission = AdmissionController(TenantQuota(max_concurrent=3))
        service = self._build(admission=admission)
        service.step("cam")
        used_before = service.admission.units_used("acme")
        assert used_before > 0
        bundle = json.loads(json.dumps(service.snapshot().to_dict()))
        resumed = QueryService.resume(
            bundle,
            {"cam": VIDEO, "door": VIDEO_B},
            default_zoo(seed=3),
            admission=AdmissionController(TenantQuota(max_concurrent=3)),
        )
        assert resumed.admission.units_used("acme") == used_before
        assert resumed.admission.usage()["acme"]["live_queries"] == 3
        with pytest.raises(AdmissionError, match="concurrent-query quota"):
            resumed.register(
                "cam", QuerySpec("late", QUERIES[0].query), tenant="acme"
            )


class TestBundleFormat:
    def test_round_trip(self):
        service = QueryService(default_zoo(seed=3))
        service.add_stream("cam", VIDEO)
        service.register("cam", QUERIES[0])
        state = service.snapshot()
        assert state.version == SERVICE_BUNDLE_VERSION
        rebuilt = ServiceState.from_dict(
            json.loads(json.dumps(state.to_dict()))
        )
        assert rebuilt.to_dict() == state.to_dict()

    @pytest.mark.parametrize("version", [0, 2, None, "1"])
    def test_unknown_versions_refused(self, version):
        with pytest.raises(
            ConfigurationError, match="unsupported service bundle version"
        ):
            ServiceState.from_dict(
                {
                    "version": version,
                    "streams": {},
                    "registry": {},
                    "admission": {},
                }
            )
