#!/usr/bin/env python
"""Offline top-K over a movie repository — the §4 workflow.

Ingests two Table-2 movies into one repository (one-time preprocessing:
clip score tables + per-label individual sequences), then answers ranked
queries with RVAQ, comparing its access cost against the Pq-Traverse and
FA baselines.

Run:  python examples/movie_topk.py
"""

from repro import OfflineEngine, Query
from repro.detectors.zoo import default_zoo
from repro.video.datasets import DISTRACTOR_OBJECTS, build_movie, movie_by_title


def main() -> None:
    engine = OfflineEngine(zoo=default_zoo(seed=4))

    # --- ingestion phase (once per video; scale=0.15 keeps it quick) -----
    # Ingestion is query-independent, so every video is processed for the
    # same label vocabulary (here: the union over both movies' queries).
    specs = [movie_by_title(t) for t in ("Coffee and Cigarettes", "Titanic")]
    object_labels = sorted(
        {o for s in specs for o in s.objects} | {"person", *DISTRACTOR_OBJECTS}
    )
    action_labels = sorted({s.action for s in specs})
    for spec in specs:
        video = build_movie(spec, seed=4, scale=0.15)
        print(f"ingesting {spec.title!r} ({video.meta.n_clips} clips) ...")
        engine.ingest(video, object_labels=object_labels, action_labels=action_labels)

    # --- query phase ------------------------------------------------------
    query = Query(objects=["wine glass", "cup"], action="smoking")
    print(f"\nquery: {query.describe()}, top-5 sequences\n")
    for algorithm in ("rvaq", "pq-traverse", "fa"):
        result = engine.top_k(query, k=5, algorithm=algorithm)
        print(f"[{algorithm}]")
        for video_id, start, end, score in engine.localized(result):
            print(f"  {video_id}: clips [{start}, {end}]  score={score:.1f}")
        stats = result.stats
        print(
            f"  cost: {stats.random_accesses} random + "
            f"{stats.sequential_accesses} sequential accesses "
            f"(~{stats.simulated_ms:.1f} ms simulated I/O)\n"
        )


if __name__ == "__main__":
    main()
