"""Failure injection: recording outages must degrade gracefully.

During an outage nothing is observable — the engines must not hallucinate
results there, must not destabilise their background estimators, and must
recover immediately after the signal returns.
"""

from __future__ import annotations

import pytest

from repro.core.config import OnlineConfig
from repro.core.query import Query
from repro.core.svaqd import SVAQD
from repro.errors import ConfigurationError
from repro.eval.metrics import match_sequences
from repro.utils.intervals import IntervalSet
from repro.video.model import ClipView
from repro.video.synthesis import SceneSpec, TrackSpec, synthesize_video

QUERY = Query(objects=["faucet"], action="washing dishes")


def outage_video(outages=((120.0, 180.0),), seed: int = 17):
    spec = SceneSpec(
        video_id=f"outage-{seed}",
        duration_s=360.0,
        tracks=(
            TrackSpec(label="washing dishes", kind="action",
                      occupancy=0.25, mean_duration_s=20.0),
            TrackSpec(label="faucet", kind="object",
                      correlate_with="washing dishes", correlation=0.9,
                      occupancy=0.05),
        ),
        outages_s=tuple(outages),
    )
    return synthesize_video(spec, seed=seed)


class TestOutageModel:
    def test_outage_frames_recorded(self):
        video = outage_video()
        spans = video.truth.outage_frames
        assert spans.total_length == pytest.approx(60 * 25, abs=2)

    def test_detector_silent_during_outage(self, zoo):
        video = outage_video()
        scores = zoo.detector.score_video(video.meta, video.truth, "faucet")
        for frame in video.truth.outage_frames.points():
            if frame < video.meta.usable_frames:
                assert scores[frame] == 0.0

    def test_recognizer_silent_during_outage(self, zoo):
        video = outage_video()
        scores = zoo.recognizer.score_video(
            video.meta, video.truth, "washing dishes"
        )
        outage_shots = video.meta.geometry.frame_set_to_shots(
            video.truth.outage_frames
        )
        for shot in outage_shots.points():
            if shot < video.meta.n_shots:
                assert scores[shot] == 0.0

    def test_tracker_silent_during_outage(self, zoo):
        video = outage_video()
        outage = video.truth.outage_frames
        clip_of_outage = video.meta.geometry.clip_of_frame(
            next(iter(outage.points()))
        )
        observations = zoo.tracker.tracks_in_clip(
            video.meta, video.truth, "faucet",
            ClipView(video.meta, clip_of_outage),
        )
        assert all(obs.frame not in outage for obs in observations)

    def test_invalid_outage_rejected(self):
        with pytest.raises(ConfigurationError):
            outage_video(outages=((300.0, 500.0),))


class TestEngineUnderOutage:
    def test_no_results_inside_outage(self, zoo):
        video = outage_video()
        result = SVAQD(zoo, QUERY, OnlineConfig()).run(video)
        outage_clips = video.meta.geometry.frame_set_to_clips(
            video.truth.outage_frames, min_cover=0.99
        )
        assert not result.sequences.intersect(outage_clips)

    def test_recovers_after_outage(self, zoo):
        video = outage_video()
        result = SVAQD(zoo, QUERY, OnlineConfig()).run(video)
        geometry = video.meta.geometry
        outage_end_clip = geometry.clip_of_frame(
            video.truth.outage_frames.bounding().end
        )
        # ground truth restricted to the post-outage region
        truth = video.truth.query_clips(["faucet"], "washing dishes", geometry)
        post_truth = truth.clipped(outage_end_clip + 2, video.meta.n_clips - 1)
        post_found = result.sequences.clipped(
            outage_end_clip + 2, video.meta.n_clips - 1
        )
        if post_truth:
            report = match_sequences(post_found, post_truth)
            assert report.recall >= 0.5

    def test_estimators_survive_outage(self, zoo):
        video = outage_video()
        result = SVAQD(zoo, QUERY, OnlineConfig()).run(video)
        for label, rate in result.final_rates.items():
            assert 0.0 < rate < 0.5, (label, rate)

    def test_clean_run_unaffected_by_feature(self, zoo):
        """A video without outages behaves identically to one built before
        the feature existed (empty outage set is the default)."""
        video = outage_video(outages=())
        assert video.truth.outage_frames == IntervalSet.empty()
        result = SVAQD(zoo, QUERY, OnlineConfig()).run(video)
        truth = video.truth.query_clips(
            ["faucet"], "washing dishes", video.meta.geometry
        )
        assert match_sequences(result.sequences, truth).f1 >= 0.5
