"""The streaming query service: live registration, incremental push,
cancellation — all result-identical to the batch engine."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import OnlineConfig
from repro.core.engine import OnlineEngine
from repro.core.query import Query
from repro.core.scheduler import QuerySpec
from repro.detectors.zoo import default_zoo
from repro.errors import ConfigurationError
from repro.service import QueryService, ServiceClient
from repro.service.service import EVENT_FINAL, EVENT_SEQUENCE
from tests.conftest import make_kitchen_video

VIDEO = make_kitchen_video(seed=41, duration_s=240.0, video_id="svcvid")
VIDEO_B = make_kitchen_video(seed=42, duration_s=180.0, video_id="svcvid-b")
QUERIES = [
    Query(objects=["faucet"], action="washing dishes"),
    Query(objects=["person"], action="washing dishes"),
]


def reference_run(queries=QUERIES, video=VIDEO):
    return OnlineEngine(zoo=default_zoo(seed=3)).run_queries(queries, video)


def drive(service, *collect):
    """Run the service to completion alongside collect() coroutines."""

    async def main():
        tasks = [asyncio.create_task(coro) for coro in collect]
        await asyncio.sleep(0)  # let collectors subscribe before clips flow
        await service.serve()
        return [await t for t in tasks]

    return asyncio.run(main())


class TestResultPush:
    def test_pushed_sequences_match_batch_engine(self):
        service = QueryService(default_zoo(seed=3), clip_batch=4)
        service.add_stream("cam", VIDEO)
        client = ServiceClient(service)
        names = [client.register("cam", q) for q in QUERIES]
        outs = drive(
            service, *(client.collect("cam", n) for n in names)
        )
        reference = reference_run()
        for name, (pushed, final) in zip(names, outs):
            assert final.sequences == reference[name].sequences
            # Incremental pushes reassemble into exactly the final result.
            assert [
                (iv.start, iv.end) for iv in pushed
            ] == final.sequences.as_tuples()

    def test_multiple_streams_progress_together(self):
        service = QueryService(default_zoo(seed=3), clip_batch=8)
        service.add_stream("a", VIDEO)
        service.add_stream("b", VIDEO_B)
        client = ServiceClient(service)
        name_a = client.register("a", QUERIES[0])
        name_b = client.register("b", QUERIES[0])
        outs = drive(
            service,
            client.collect("a", name_a),
            client.collect("b", name_b),
        )
        assert outs[0][1].sequences == reference_run()[name_a].sequences
        assert outs[1][1].sequences == (
            reference_run(video=VIDEO_B)[name_b].sequences
        )

    def test_subscribe_sees_kinds_and_metadata(self):
        service = QueryService(default_zoo(seed=3))
        service.add_stream("cam", VIDEO)
        name = service.register("cam", QUERIES[0], tenant="acme")

        async def main():
            queue = service.subscribe("cam", name)
            await service.serve()
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            return events

        events = asyncio.run(main())
        assert events, "no events pushed"
        assert all(e.tenant == "acme" for e in events)
        assert [e.kind for e in events[:-1]] == (
            [EVENT_SEQUENCE] * (len(events) - 1)
        )
        assert events[-1].kind == EVENT_FINAL
        assert events[-1].result.sequences.as_tuples() == [
            (e.interval.start, e.interval.end) for e in events[:-1]
        ]

    def test_subscribe_unknown_query_rejected(self):
        service = QueryService(default_zoo(seed=3))
        service.add_stream("cam", VIDEO)
        with pytest.raises(ConfigurationError, match="no query"):
            service.subscribe("cam", "ghost")


class TestRegistration:
    def test_register_mid_stream_sees_the_suffix(self):
        service = QueryService(default_zoo(seed=3), clip_batch=8)
        service.add_stream("cam", VIDEO)
        service.register("cam", QUERIES[0])
        service.step("cam")
        join_at = service.position("cam")
        assert join_at == 8
        late = service.register("cam", QUERIES[1])

        async def main():
            await service.serve()

        asyncio.run(main())
        from repro.core.session import StreamSession
        from repro.video.stream import ClipStream

        session = StreamSession.for_query(
            default_zoo(seed=3), QUERIES[1], VIDEO, OnlineConfig(),
            dynamic=True,
        )
        for clip in ClipStream(VIDEO.meta, start_clip=join_at):
            session.process(clip)
        assert service.result("cam", late).sequences == (
            session.finish().sequences
        )

    def test_duplicate_names_rejected_across_history(self):
        service = QueryService(default_zoo(seed=3))
        service.add_stream("cam", VIDEO)
        service.register("cam", QuerySpec("mine", QUERIES[0]))
        with pytest.raises(ConfigurationError, match="duplicate"):
            service.register("cam", QuerySpec("mine", QUERIES[1]))
        service.cancel("cam", "mine")
        with pytest.raises(ConfigurationError, match="duplicate"):
            service.register("cam", QuerySpec("mine", QUERIES[1]))
        # A failed registration must not leak the tenant's quota slot.
        assert service.admission.usage()["default"]["live_queries"] == 0

    def test_register_on_ended_stream_rejected(self):
        service = QueryService(default_zoo(seed=3), clip_batch=1000)
        service.add_stream("cam", VIDEO)
        service.register("cam", QUERIES[0])
        while service.step("cam"):
            pass
        with pytest.raises(ConfigurationError, match="ended"):
            service.register("cam", QUERIES[1])


class TestCancellation:
    def test_cancel_pushes_final_and_frees_the_slot(self):
        service = QueryService(default_zoo(seed=3), clip_batch=8)
        service.add_stream("cam", VIDEO)
        client = ServiceClient(service)
        name = client.register("cam", QUERIES[0])

        async def main():
            queue = client.subscribe("cam", name)
            service.step("cam")
            service.step("cam")
            result = client.cancel("cam", name)
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            return result, events

        result, events = asyncio.run(main())
        assert events[-1].kind == EVENT_FINAL
        assert events[-1].result is result
        assert service.admission.usage()["default"]["live_queries"] == 0
        assert service.result("cam", name) is result

    def test_cancel_other_tenants_query_rejected(self):
        service = QueryService(default_zoo(seed=3))
        service.add_stream("cam", VIDEO)
        owner = ServiceClient(service, tenant="owner")
        thief = ServiceClient(service, tenant="thief")
        name = owner.register("cam", QUERIES[0])
        with pytest.raises(ConfigurationError, match="belongs to tenant"):
            thief.cancel("cam", name)


class TestHealth:
    def test_health_reports_streams_stats_and_admission(self):
        service = QueryService(default_zoo(seed=3), clip_batch=8)
        service.add_stream("cam", VIDEO)
        name = service.register("cam", QUERIES[0], tenant="acme")
        service.step("cam")
        payload = service.health()
        stream = payload["streams"]["cam"]
        assert stream["position"] == 8
        assert stream["live"] == [name]
        query_stats = stream["queries"][name]
        assert query_stats["clips_processed"] == 8
        # The same counters the fault-tolerance layer maintains ride in
        # the payload — the service surfaces them, it does not rename.
        for counter in (
            "model_retries", "model_giveups", "sequences_degraded",
            "detector_cache_hits",
        ):
            assert counter in query_stats
            assert counter in payload["totals"]
        assert payload["admission"]["acme"]["live_queries"] == 1
        assert payload["admission"]["acme"]["units_used"] > 0
        # Fleet-level rate-sharing counters ride per stream (None when
        # sharing is disabled, e.g. under a fault-tolerant config).
        sharing = stream["rate_sharing"]
        assert sharing is not None
        for counter in (
            "groups", "members", "refresh_skipped",
            "estimator_s", "refresh_s",
        ):
            assert counter in sharing

    def test_bad_clip_batch_rejected(self):
        with pytest.raises(ConfigurationError, match="clip_batch"):
            QueryService(default_zoo(seed=3), clip_batch=0)
