"""Figure 5 — frame-level F1 as the clip size varies.

Paper shape target: the frame-level F1 is nearly flat in the clip size —
the clip size changes how results are segmented into sequences (Figure 4),
not which frames are reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import OnlineConfig
from repro.detectors.zoo import default_zoo
from repro.eval.experiments.fig3_f1_all_queries import SVAQ_P0
from repro.eval.experiments.fig4_clip_size import (
    DEFAULT_CLIP_SIZES,
    QUERIES,
    _resized,
)
from repro.eval.harness import aggregate_frame_f1, run_query_over_videos
from repro.utils.tables import render_series
from repro.video.datasets import build_youtube_set, youtube_set_by_id


@dataclass(frozen=True)
class Fig5Result:
    clip_sizes: tuple[int, ...]
    #: query label -> algorithm -> frame-level F1 per clip size
    series: dict[str, dict[str, tuple[float, ...]]]

    def render(self) -> str:
        blocks = []
        for label, algos in self.series.items():
            blocks.append(
                render_series(
                    "clip size",
                    self.clip_sizes,
                    {a.upper(): values for a, values in algos.items()},
                    title=f"Figure 5 ({label})",
                )
            )
        return "\n\n".join(blocks)

    def spread(self, label: str, algorithm: str) -> float:
        values = self.series[label][algorithm]
        return max(values) - min(values)


def run(
    seed: int = 0,
    scale: float = 0.15,
    clip_sizes: Sequence[int] = DEFAULT_CLIP_SIZES,
    algorithms: Sequence[str] = ("svaq", "svaqd"),
) -> Fig5Result:
    zoo = default_zoo(seed=seed)
    config = OnlineConfig().with_p0(SVAQ_P0)
    series: dict[str, dict[str, tuple[float, ...]]] = {}
    for qid, query in QUERIES:
        base_videos = build_youtube_set(youtube_set_by_id(qid), seed, scale).videos
        per_algo: dict[str, list[float]] = {a: [] for a in algorithms}
        for size in clip_sizes:
            videos = _resized(base_videos, size)
            for algo in algorithms:
                runs = run_query_over_videos(algo, zoo, query, videos, config)
                per_algo[algo].append(aggregate_frame_f1(runs))
        series[f"{qid}: {query.describe()}"] = {
            a: tuple(v) for a, v in per_algo.items()
        }
    return Fig5Result(clip_sizes=tuple(clip_sizes), series=series)
