"""Lowering parsed statements to executable plans."""

from __future__ import annotations

import pytest

from repro.errors import PlanningError
from repro.sql.parser import parse
from repro.sql.planner import plan


def q(text: str):
    return plan(parse(text))


class TestModes:
    def test_online_plan(self):
        p = q(
            "SELECT MERGE(clipID) FROM (PROCESS v PRODUCE clipID, "
            "obj USING D, act USING A) "
            "WHERE act='jumping' AND obj.include('car')"
        )
        assert p.mode == "online"
        assert p.k is None
        assert p.query.action == "jumping"
        assert p.query.objects == ("car",)
        assert p.video == "v"

    def test_offline_plan(self):
        p = q(
            "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS v PRODUCE "
            "clipID, obj USING T, act USING A) "
            "WHERE act='smoking' AND obj.include('cup') "
            "ORDER BY RANK(act, obj) LIMIT 7"
        )
        assert p.mode == "offline"
        assert p.k == 7

    def test_or_lowers_to_compound(self):
        p = q(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
            "WHERE a='x' OR a='y'"
        )
        assert p.query is None
        assert p.compound is not None
        assert len(p.compound.clauses[0]) == 2

    def test_multiple_actions_conjunction(self):
        p = q(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
            "WHERE a='x' AND a='y'"
        )
        assert p.query.actions == ("x", "y")

    def test_objects_deduplicated_keeping_order(self):
        p = q(
            "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, o USING D, a USING A) "
            "WHERE a='x' AND o.include('car','person') AND o.include('car')"
        )
        assert p.query.objects == ("car", "person")


class TestValidation:
    def test_merge_required(self):
        with pytest.raises(PlanningError):
            q(
                "SELECT clipID FROM (PROCESS v PRODUCE clipID, a USING A) "
                "WHERE a='x'"
            )

    def test_order_by_requires_limit(self):
        with pytest.raises(PlanningError):
            q(
                "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
                "WHERE a='x' ORDER BY RANK(a)"
            )

    def test_unproduced_alias_rejected(self):
        with pytest.raises(PlanningError):
            q(
                "SELECT MERGE(c) FROM (PROCESS v PRODUCE c, a USING A) "
                "WHERE ghost='x'"
            )

    def test_execute_mode_mismatch(self, zoo, kitchen_video):
        from repro.core.engine import OnlineEngine

        p = q(
            "SELECT MERGE(c), RANK(a, o) FROM (PROCESS v PRODUCE c, "
            "o USING T, a USING A) WHERE a='x' AND o.include('y') "
            "ORDER BY RANK(a, o) LIMIT 2"
        )
        with pytest.raises(PlanningError):
            p.execute_online(OnlineEngine(zoo=zoo), kitchen_video)


class TestExecution:
    def test_online_execution(self, zoo, kitchen_video):
        from repro.core.engine import OnlineEngine

        p = q(
            "SELECT MERGE(clipID) FROM (PROCESS kitchen PRODUCE clipID, "
            "obj USING ObjectDetector, act USING ActionRecognizer) "
            "WHERE act='washing dishes' AND obj.include('faucet')"
        )
        result = p.execute_online(OnlineEngine(zoo=zoo), kitchen_video)
        assert result.video_id == "kitchen"

    def test_offline_execution(self, kitchen_engine):
        p = q(
            "SELECT MERGE(clipID), RANK(act, obj) FROM (PROCESS repo PRODUCE "
            "clipID, obj USING ObjectTracker, act USING ActionRecognizer) "
            "WHERE act='washing dishes' AND obj.include('faucet') "
            "ORDER BY RANK(act, obj) LIMIT 3"
        )
        result = p.execute_offline(kitchen_engine)
        assert len(result.ranked) <= 3
