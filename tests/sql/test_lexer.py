"""Tokeniser for the SQL-like dialect."""

from __future__ import annotations

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        token = tokenize("clipID")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "clipID"

    def test_string_literal_with_spaces(self):
        token = tokenize("'wine glass'")[0]
        assert token.type is TokenType.STRING
        assert token.text == "wine glass"

    def test_string_escape(self):
        token = tokenize("'it''s'")[0]
        assert token.text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.text == "42"

    def test_punctuation(self):
        assert kinds("(),.=")[:-1] == [
            TokenType.LPAREN, TokenType.RPAREN, TokenType.COMMA,
            TokenType.DOT, TokenType.EQ,
        ]

    def test_end_token(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("SELECT ; FROM")
        assert err.value.position == 7

    def test_whitespace_and_newlines(self):
        tokens = tokenize("SELECT\n\t x")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "x"]
