"""Figure 2 — F1 of SVAQ vs SVAQD over the initial background probability.

Regenerates the two panels of the paper's Figure 2 and asserts the shape:
SVAQD is flat across five orders of magnitude of p₀ while SVAQ peaks and
degrades toward the extremes.
"""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, publish

from repro.eval.experiments import fig2_background_prob

_result = None


def compute():
    global _result
    if _result is None:
        _result = fig2_background_prob.run(seed=BENCH_SEED, scale=BENCH_SCALE)
        publish("fig2_background_prob", _result.render())
    return _result


def test_fig2_regenerate(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    for label in result.series:
        # SVAQD's spread across the grid stays tight; SVAQ's does not.
        assert result.flatness(label, "svaqd") <= 0.35
        svaq = result.series[label]["svaq"]
        svaqd = result.series[label]["svaqd"]
        # SVAQD at its worst p0 is close to (or above) SVAQ at its best.
        assert min(svaqd) >= max(svaq) - 0.35
        # ... and comfortably above SVAQ at the extremes.
        assert svaqd[0] > svaq[0]
