"""Algorithm 1 — SVAQ: streaming video action queries with static critical
values.

SVAQ derives one critical value per query predicate from an *a-priori*
background probability (Eq. 5) and evaluates every incoming clip with
Algorithm 2, merging positive clips into result sequences (Eq. 4).  Its
accuracy therefore depends on how well the assumed ``p₀`` matches the
stream — the sensitivity the paper's Figure 2 quantifies and SVAQD removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import OnlineConfig
from repro.core.indicators import ClipEvaluation, ClipEvaluator
from repro.core.query import Query
from repro.core.sequences import SequenceAssembler
from repro.detectors.zoo import ModelZoo
from repro.scanstats.critical import critical_value
from repro.utils.intervals import IntervalSet
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo


@dataclass(frozen=True)
class OnlineResult:
    """Output of one streaming run: the result sequences ``P_q`` plus the
    per-clip evaluations (used by the noise/selectivity analyses)."""

    query: Query
    video_id: str
    sequences: IntervalSet
    evaluations: tuple[ClipEvaluation, ...]
    k_crit_trace: tuple[Mapping[str, int], ...] = ()
    #: SVAQD only: the background-probability estimates when the stream
    #: ended (diagnostics for the adaptivity experiments).
    final_rates: Mapping[str, float] = ()

    @property
    def n_clips(self) -> int:
        return len(self.evaluations)

    @property
    def positive_clips(self) -> int:
        return sum(1 for ev in self.evaluations if ev.positive)

    def predicate_indicator_rate(self, label: str) -> float:
        """Fraction of evaluated clips on which a predicate's indicator
        fired — its empirical clip-level selectivity."""
        evaluated = fired = 0
        for ev in self.evaluations:
            outcome = ev.outcome(label)
            if outcome.evaluated:
                evaluated += 1
                fired += int(outcome.indicator)
        return fired / evaluated if evaluated else 0.0


@dataclass
class SVAQ:
    """Algorithm 1.  Construct once per query; ``run`` per video stream.

    ``k_crit_overrides`` lets callers pin critical values per label
    (Algorithm 1 allows "each [predicate] may have its own initial
    values"); otherwise they derive from ``config.object_p0`` /
    ``config.action_p0`` via Eq. 5.
    """

    zoo: ModelZoo
    query: Query
    config: OnlineConfig = field(default_factory=OnlineConfig)
    k_crit_overrides: Mapping[str, int] = field(default_factory=dict)

    def initial_critical_values(self, video_geometry) -> dict[str, int]:
        """``k_crit_o_init`` / ``k_crit_a_init`` for every predicate."""
        frames_per_clip = video_geometry.frames_per_clip
        shots_per_clip = video_geometry.shots_per_clip
        shot_horizon = max(
            shots_per_clip, self.config.horizon_ou // video_geometry.frames_per_shot
        )
        values: dict[str, int] = {}
        for label in self.query.frame_level_labels:
            values[label] = self.k_crit_overrides.get(label) or critical_value(
                self.config.object_p0,
                frames_per_clip,
                self.config.horizon_ou,
                self.config.alpha,
            )
        for label in self.query.actions:
            values[label] = self.k_crit_overrides.get(label) or critical_value(
                self.config.action_p0,
                shots_per_clip,
                shot_horizon,
                self.config.alpha,
            )
        return values

    def run(
        self,
        video: LabeledVideo,
        *,
        stream: ClipStream | None = None,
        short_circuit: bool = True,
    ) -> OnlineResult:
        """Process a stream and return the result sequences (Eq. 4)."""
        evaluator = ClipEvaluator(
            self.zoo, video.meta, video.truth, self.query, self.config
        )
        k_crit = self.initial_critical_values(video.meta.geometry)
        clips = stream if stream is not None else ClipStream(video.meta)
        assembler = SequenceAssembler()
        evaluations: list[ClipEvaluation] = []
        while not clips.end():
            clip = clips.next()
            evaluation = evaluator.evaluate(
                clip.clip_id, k_crit, short_circuit=short_circuit
            )
            evaluations.append(evaluation)
            assembler.push(clip.clip_id, evaluation.positive)
        assembler.finish()
        return OnlineResult(
            query=self.query,
            video_id=video.video_id,
            sequences=assembler.result(),
            evaluations=tuple(evaluations),
        )
