"""Monte-Carlo estimation of the scan statistic tail.

A second, independent validator for the Naus approximation that scales to
window sizes the exact DP cannot reach.  Fully vectorised: each replication
is a row of Bernoulli draws; window sums come from a prefix-sum difference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScanStatisticsError
from repro.utils.rng import derive_rng


def monte_carlo_scan_tail(
    k: int,
    w: int,
    n: int,
    p: float,
    *,
    replications: int = 20_000,
    seed: int | None = 0,
) -> float:
    """Estimate ``P(S_w(N) >= k)`` from ``replications`` simulated streams."""
    if w <= 0 or n <= 0 or replications <= 0:
        raise ScanStatisticsError("w, N and replications must be positive")
    if not 0.0 <= p <= 1.0:
        raise ScanStatisticsError(f"p must be in [0, 1]; got {p}")
    if k <= 0:
        return 1.0
    if k > min(w, n):
        return 0.0

    rng = derive_rng(seed, "mc-scan", k, w, n, p)
    window = min(w, n)
    hits = 0
    # Chunk replications to bound peak memory at ~32 MB of draws.
    chunk = max(1, min(replications, 32_000_000 // max(1, n)))
    remaining = replications
    while remaining > 0:
        rows = min(chunk, remaining)
        draws = rng.random((rows, n)) < p
        sums = np.cumsum(draws, axis=1, dtype=np.int32)
        max_in_window = sums[:, window - 1 :].copy()
        if window < n:
            max_in_window[:, 1:] -= sums[:, : n - window]
        hits += int(np.count_nonzero(max_in_window.max(axis=1) >= k))
        remaining -= rows
    return hits / replications
