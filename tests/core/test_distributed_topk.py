"""Scatter-gather distributed top-K: equivalence with the single engine.

The contract under test (DESIGN.md "Sharded storage & distributed
top-K"): for every shard count and every executor, the distributed
result's localized rows are *identical* to running exact-score RVAQ over
the merged single repository — same sequences, same scores, same order,
ties included — and the merged access/cost accounting equals the sum of
the per-shard reports.  The serial/thread/process executors share one
barrier-round schedule, so their per-shard accounting is identical too.
"""

from __future__ import annotations

import pytest

from repro.core.config import RankingConfig
from repro.core.distributed import (
    DistributedTopKResult,
    GlobalFrontier,
    ShardFrontier,
    sharded_top_k,
)
from repro.core.engine import OfflineEngine
from repro.core.query import Query
from repro.core.rvaq import RVAQ
from repro.core.scoring import PaperScoring
from repro.errors import ConfigurationError, QueryError
from repro.storage.repository import VideoRepository
from repro.storage.sharded import ShardedRepository
from repro.storage.synth import SYNTH_ACTION, SYNTH_OBJECT, synthetic_repository

QUERY = Query(objects=[SYNTH_OBJECT], action=SYNTH_ACTION)


def single_rows(repo: VideoRepository, k: int):
    """The oracle: exact-score RVAQ over the unsharded repository,
    localized exactly as :meth:`OfflineEngine.localized` renders it."""
    cfg = RankingConfig(require_exact_scores=True)
    result = RVAQ(repo, PaperScoring(), cfg).top_k(QUERY, k)
    rows = []
    for r in result.ranked:
        video_id, start = repo.to_local(r.interval.start)
        _, end = repo.to_local(r.interval.end)
        rows.append((video_id, start, end, r.score))
    return rows


def stats_tuple(stats):
    return (stats.sorted_accesses, stats.reverse_accesses, stats.random_accesses)


class TestEquivalence:
    @pytest.mark.parametrize("n_videos,n_clips,k", [(6, 80, 5), (10, 150, 10)])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_rows_identical_to_single_engine(
        self, n_videos, n_clips, k, n_shards, executor
    ):
        repo = synthetic_repository(n_videos, n_clips, seed=7)
        sharded = ShardedRepository.split(repo, n_shards)
        result = sharded_top_k(sharded, QUERY, k, executor=executor)
        assert list(result.rows) == single_rows(repo, k)

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_process_executor_in_memory(self, n_shards):
        repo = synthetic_repository(6, 80, seed=7)
        sharded = ShardedRepository.split(repo, n_shards)
        result = sharded_top_k(sharded, QUERY, 5, executor="process")
        assert list(result.rows) == single_rows(repo, 5)

    def test_process_executor_from_saved_tree(self, tmp_path):
        """Workers open their shards from disk via the format-3 memmap."""
        repo = synthetic_repository(8, 100, seed=13)
        sharded = ShardedRepository.split(repo, 4)
        sharded.save(tmp_path / "tree")
        loaded = ShardedRepository.load(tmp_path / "tree")
        result = sharded_top_k(loaded, QUERY, 5, executor="process")
        assert list(result.rows) == single_rows(repo, 5)

    def test_k_exceeds_candidates(self):
        """k beyond |P_q|: every candidate is returned, same order."""
        repo = synthetic_repository(4, 30, seed=3)
        sharded = ShardedRepository.split(repo, 2)
        result = sharded_top_k(sharded, QUERY, 500)
        oracle = single_rows(repo, 500)
        assert list(result.rows) == oracle
        assert len(oracle) < 500  # the config really is candidate-starved

    @pytest.mark.parametrize("budget", [1, 8, 64])
    def test_small_round_budgets(self, budget):
        """Many coordinator rounds (floor feedback live) stay identical."""
        repo = synthetic_repository(6, 60, seed=21)
        sharded = ShardedRepository.split(repo, 3)
        result = sharded_top_k(sharded, QUERY, 5, round_budget=budget)
        assert list(result.rows) == single_rows(repo, 5)


class TestAccounting:
    def test_merged_stats_equal_per_shard_sums(self):
        repo = synthetic_repository(8, 100, seed=9)
        sharded = ShardedRepository.split(repo, 4)
        result = sharded_top_k(sharded, QUERY, 5)
        assert isinstance(result, DistributedTopKResult)
        summed = (0, 0, 0)
        for report in result.per_shard:
            s = stats_tuple(report.stats)
            summed = tuple(a + b for a, b in zip(summed, s))
        assert stats_tuple(result.stats) == summed
        assert result.iterations == sum(
            report.iterations for report in result.per_shard
        )
        assert set(result.meter.stage_breakdown()) == {
            f"shard-{i:03d}" for i in range(4)
        }

    @pytest.mark.parametrize("budget", [3, 32])
    def test_executor_invariant_accounting(self, budget):
        """Serial and thread executors follow the same barrier-round
        schedule, so per-shard access counts and rounds are identical."""
        repo = synthetic_repository(6, 80, seed=17)

        def per_shard(executor):
            sharded = ShardedRepository.split(repo, 3)
            result = sharded_top_k(
                sharded, QUERY, 5, executor=executor, round_budget=budget
            )
            return [
                (r.shard, r.iterations, r.rounds, stats_tuple(r.stats))
                for r in result.per_shard
            ]

        assert per_shard("serial") == per_shard("thread")

    def test_floor_feedback_prunes_work(self):
        """With multiple rounds the coordinator's floor retires shard
        work early; one giant round never feeds the floor back."""
        repo = synthetic_repository(8, 100, seed=9)
        small = sharded_top_k(
            ShardedRepository.split(repo, 4), QUERY, 5, round_budget=8
        )
        huge = sharded_top_k(
            ShardedRepository.split(repo, 4), QUERY, 5, round_budget=10**6
        )
        assert list(small.rows) == list(huge.rows)
        assert huge.rounds == 1
        assert small.rounds > 1
        assert small.iterations <= huge.iterations


class TestGlobalFrontier:
    def test_floor_is_kth_of_union(self):
        frontier = GlobalFrontier(n_shards=2, k=3)
        assert frontier.floor == float("-inf")

        def summary(shard, lowers):
            return ShardFrontier(
                shard=shard,
                top_lowers=lowers,
                max_live_upper=1.0,
                n_live=1,
                done=False,
                iterations=0,
            )

        frontier.observe(summary(0, (0.9, 0.5)))
        assert frontier.floor == float("-inf")  # only 2 bounds so far
        frontier.observe(summary(1, (0.8, 0.7)))
        assert frontier.floor == 0.7
        # Re-observation replaces, never accumulates.
        frontier.observe(summary(1, (0.95, 0.1)))
        assert frontier.floor == 0.5


class TestEngineDispatch:
    def engines(self, n_shards=2):
        repo = synthetic_repository(5, 60, seed=31)
        cfg = RankingConfig(require_exact_scores=True)
        single = OfflineEngine(config=cfg, repository=repo)
        sharded = OfflineEngine(
            config=cfg, repository=ShardedRepository.split(repo, n_shards)
        )
        return single, sharded

    def test_sharded_engine_matches_single(self):
        single, sharded = self.engines()
        a = single.top_k(QUERY, 5)
        b = sharded.top_k(QUERY, 5)
        assert isinstance(b, DistributedTopKResult)
        assert sharded.localized(b) == single.localized(a)

    def test_baselines_refuse_sharded_repository(self):
        _, sharded = self.engines()
        for algorithm in ("fa", "pq-traverse", "rvaq-noskip"):
            with pytest.raises(ConfigurationError, match="merge"):
                sharded.top_k(QUERY, 5, algorithm=algorithm)

    def test_single_result_not_localizable_against_shards(self):
        single, sharded = self.engines()
        result = single.top_k(QUERY, 5)
        with pytest.raises(ConfigurationError):
            sharded.localized(result)


class TestValidation:
    def test_bad_arguments(self):
        sharded = ShardedRepository.split(
            synthetic_repository(2, 20, seed=1), 2
        )
        with pytest.raises(ConfigurationError):
            sharded_top_k(sharded, QUERY, 0)
        with pytest.raises(ConfigurationError):
            sharded_top_k(sharded, QUERY, 5, round_budget=0)
        with pytest.raises(ConfigurationError):
            sharded_top_k(sharded, QUERY, 5, executor="bogus")

    def test_unconverged_finish_refused(self):
        from repro.core.distributed import ShardSearch

        repo = synthetic_repository(2, 40, seed=1)
        search = ShardSearch(repo, QUERY, 3)
        with pytest.raises(QueryError, match="converged"):
            search.finish()
