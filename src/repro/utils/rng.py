"""Seeded random-number plumbing.

All stochastic components (video synthesis, detector noise, Monte-Carlo
validators) draw from ``numpy.random.Generator`` instances created here.
Determinism rule: a component never calls ``np.random`` module-level
functions; it receives a generator or a seed and, when it needs several
independent streams, derives them with :func:`spawn_seed` so that adding a
new consumer does not perturb existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_rng(seed: int | None, *context: object) -> np.random.Generator:
    """Create a generator deterministically derived from ``seed`` + context.

    ``context`` items (video ids, label names, phase tags, ...) are hashed
    into the seed so that e.g. the detector noise of one video is independent
    of — and unaffected by — every other video's stream.

    A ``None`` seed yields a non-deterministic generator (fresh OS entropy);
    experiments always pass explicit seeds.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(spawn_seed(seed, *context))


def spawn_seed(seed: int, *context: object) -> int:
    """Derive a stable 64-bit child seed from a parent seed and context."""
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for item in context:
        digest.update(b"\x1f")
        digest.update(repr(item).encode())
    return int.from_bytes(digest.digest()[:8], "little")
