"""Offline top-K baselines (§5.1): FA, RVAQ-noSkip and Pq-Traverse.

* **FA** adapts Fagin's algorithm: parallel sorted access over the query's
  clip score tables with random-access completion of every clip seen; clips
  outside ``P_q`` are discarded; execution stops only when the score of
  *every* sequence in ``P_q`` is complete.  No lower bounds, no skipping —
  the paper's worst performer.
* **RVAQ-noSkip** is RVAQ with the dynamic skip mechanism disabled (the
  static ``C_skip`` initialisation to clips outside ``P_q`` is kept —
  without it the variant degenerates to FA and measures nothing new).
* **Pq-Traverse** walks every clip of every sequence in ``P_q`` directly,
  computes exact sequence scores, and sorts.  Its access count is constant
  in K and linear in the clips of ``P_q``.
"""

from __future__ import annotations

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.rvaq import RVAQ, RankedSequence, TopKResult
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.errors import QueryError
from repro.storage.access import AccessStats
from repro.storage.repository import VideoRepository
from repro.utils.intervals import IntervalSet, intersect_all


def _split_labels(query: Query) -> tuple[str, list[str]]:
    """Primary action + all other predicate labels (extra actions rank
    like objects; see :meth:`repro.core.rvaq.RVAQ._split_labels`)."""
    if not query.actions:
        raise QueryError("offline algorithms expect at least one action")
    primary, *extra = query.actions
    return primary, [*extra, *query.objects, *query.relationships]


def _result_sequences(repo: VideoRepository, query: Query) -> IntervalSet:
    primary, others = _split_labels(query)
    sets = [repo.sequences(primary)]
    sets.extend(repo.sequences(label) for label in others)
    return intersect_all(sets)


def pq_traverse(
    repository: VideoRepository,
    query: Query,
    k: int,
    scoring: ScoringScheme | None = None,
) -> TopKResult:
    """Score every sequence of ``P_q`` exactly by direct clip access."""
    scoring = scoring or PaperScoring()
    if k <= 0:
        raise QueryError(f"k must be positive; got {k}")
    p_q = _result_sequences(repository, query)
    stats = AccessStats()
    primary, others = _split_labels(query)
    action_table = repository.table(primary)
    object_tables = [repository.table(label) for label in others]

    ranked: list[RankedSequence] = []
    for interval in p_q:
        clip_scores = []
        for cid in interval:
            action_score = action_table.random_access(cid, stats)
            object_scores = [t.random_access(cid, stats) for t in object_tables]
            clip_scores.append(scoring.clip_score(action_score, object_scores))
        total = scoring.aggregate(clip_scores)
        ranked.append(
            RankedSequence(interval=interval, lower_bound=total, upper_bound=total)
        )
    ranked.sort(key=lambda r: r.score, reverse=True)
    return TopKResult(
        query=query, ranked=tuple(ranked[:k]), stats=stats, p_q=p_q
    )


def fagin_baseline(
    repository: VideoRepository,
    query: Query,
    k: int,
    scoring: ScoringScheme | None = None,
) -> TopKResult:
    """Fagin's algorithm adapted to sequence answers (§5.1's *FA*).

    Clips are produced in rounds of parallel sorted access; each newly seen
    clip's score is completed by random accesses to the other tables.  A
    produced clip outside ``P_q`` is disregarded.  The algorithm stops when
    every clip of every sequence in ``P_q`` has been produced, then ranks.
    """
    scoring = scoring or PaperScoring()
    if k <= 0:
        raise QueryError(f"k must be positive; got {k}")
    p_q = _result_sequences(repository, query)
    stats = AccessStats()
    primary, others = _split_labels(query)
    tables = [repository.table(primary)]
    tables += [repository.table(label) for label in others]

    membership: dict[int, int] = {}
    for seq_index, interval in enumerate(p_q):
        for cid in interval:
            membership[cid] = seq_index
    remaining = len(membership)
    clip_scores: list[dict[int, float]] = [dict() for _ in p_q]

    seen: set[int] = set()
    depth = 0
    table_len = min(len(t) for t in tables)
    while remaining > 0 and depth < table_len:
        for table in tables:
            cid, _ = table.sorted_row(depth, stats)
            if cid in seen:
                continue
            seen.add(cid)
            # Classic Fagin completion: every clip seen under sorted access
            # has its score completed by random accesses to all the other
            # tables — even clips that later turn out to lie outside P_q
            # (they are only *disregarded* after production).  This is what
            # makes FA's random-access count balloon (Table 6).
            action_score = tables[0].random_access(cid, stats)
            object_scores = [t.random_access(cid, stats) for t in tables[1:]]
            seq_index = membership.get(cid)
            if seq_index is None:
                continue  # produced, scored, and disregarded
            clip_scores[seq_index][cid] = scoring.clip_score(
                action_score, object_scores
            )
            remaining -= 1
        depth += 1

    ranked = []
    for interval, scores in zip(p_q, clip_scores):
        total = scoring.aggregate(scores.values())
        ranked.append(
            RankedSequence(interval=interval, lower_bound=total, upper_bound=total)
        )
    ranked.sort(key=lambda r: r.score, reverse=True)
    return TopKResult(
        query=query, ranked=tuple(ranked[:k]), stats=stats, p_q=p_q,
        iterations=depth,
    )


def rvaq_noskip(
    repository: VideoRepository,
    query: Query,
    k: int,
    scoring: ScoringScheme | None = None,
    config: RankingConfig | None = None,
) -> TopKResult:
    """RVAQ with the dynamic skip mechanism disabled (§5.1)."""
    return RVAQ(
        repository, scoring=scoring, config=config, enable_skip=False
    ).top_k(query, k)
