"""Engine facades: online + offline end-to-end behaviour."""

from __future__ import annotations

import pytest

from repro.core.engine import OfflineEngine, OnlineEngine
from repro.core.query import Query
from repro.errors import ConfigurationError, StorageError
from repro.eval.metrics import match_sequences
from tests.conftest import make_kitchen_video

QUERY = Query(objects=["faucet"], action="washing dishes")


class TestOnlineEngine:
    def test_run_both_algorithms(self, zoo, kitchen_video):
        engine = OnlineEngine(zoo=zoo)
        for algorithm in ("svaq", "svaqd"):
            result = engine.run(QUERY, kitchen_video, algorithm=algorithm)
            assert result.video_id == kitchen_video.video_id

    def test_unknown_algorithm(self, zoo, kitchen_video):
        engine = OnlineEngine(zoo=zoo)
        with pytest.raises(ConfigurationError):
            engine.run(QUERY, kitchen_video, algorithm="magic")

    def test_run_many(self, zoo):
        videos = [
            make_kitchen_video(seed=s, video_id=f"m{s}") for s in (71, 72)
        ]
        engine = OnlineEngine(zoo=zoo)
        results = engine.run_many(QUERY, videos)
        assert set(results) == {"m71", "m72"}

    def test_run_many_parallel_matches_serial(self, zoo):
        videos = [
            make_kitchen_video(seed=s, video_id=f"p{s}") for s in (81, 82, 83)
        ]
        engine = OnlineEngine(zoo=zoo)
        serial = engine.run_many(QUERY, videos, executor="serial")
        threaded = engine.run_many(
            QUERY, videos, executor="thread", max_workers=3
        )
        assert list(threaded) == list(serial)  # insertion order preserved
        for video_id, result in serial.items():
            assert threaded[video_id].sequences == result.sequences
            assert threaded[video_id].final_rates == pytest.approx(
                result.final_rates
            )

    def test_run_many_parallel_shared_context_totals(self, zoo):
        from repro.core.context import ExecutionContext

        videos = [
            make_kitchen_video(seed=s, video_id=f"c{s}") for s in (84, 85)
        ]
        engine = OnlineEngine(zoo=zoo)
        serial_ctx, thread_ctx = ExecutionContext(), ExecutionContext()
        engine.run_many(QUERY, videos, context=serial_ctx)
        engine.run_many(
            QUERY, videos, executor="thread", context=thread_ctx
        )
        assert thread_ctx.clips_processed == serial_ctx.clips_processed
        assert (
            thread_ctx.snapshot().model_invocations
            == serial_ctx.snapshot().model_invocations
        )

    def test_run_many_unknown_executor(self, zoo, kitchen_video):
        engine = OnlineEngine(zoo=zoo)
        with pytest.raises(ConfigurationError):
            engine.run_many(QUERY, [kitchen_video], executor="fork")


class TestOfflineEngine:
    def test_topk_algorithms_agree_on_set(self, kitchen_engine):
        results = {
            algo: kitchen_engine.top_k(QUERY, k=3, algorithm=algo)
            for algo in ("rvaq", "rvaq-noskip", "fa", "pq-traverse")
        }
        reference = {r.interval for r in results["pq-traverse"].ranked}
        for algo, result in results.items():
            assert {r.interval for r in result.ranked} == reference, algo

    def test_rvaq_answers_are_real(self, kitchen_engine, kitchen_video):
        truth = kitchen_video.truth.query_clips(
            ["faucet"], "washing dishes", kitchen_video.meta.geometry
        )
        result = kitchen_engine.top_k(QUERY, k=3)
        report = match_sequences(result.sequences, truth)
        assert report.precision >= 0.5

    def test_localized(self, kitchen_engine):
        result = kitchen_engine.top_k(QUERY, k=2)
        rows = kitchen_engine.localized(result)
        assert all(video_id == "kitchen" for video_id, *_ in rows)
        for _, start, end, score in rows:
            assert 0 <= start <= end
            assert score >= 0

    def test_video_accessor(self, kitchen_engine, kitchen_video):
        assert kitchen_engine.video("kitchen") is kitchen_video
        with pytest.raises(StorageError):
            kitchen_engine.video("ghost")

    def test_unknown_algorithm(self, kitchen_engine):
        with pytest.raises(ConfigurationError):
            kitchen_engine.top_k(QUERY, k=1, algorithm="sorcery")

    def test_remove(self, zoo):
        engine = OfflineEngine(zoo=zoo)
        video = make_kitchen_video(seed=81, video_id="tmp")
        engine.ingest(video, object_labels=["faucet"], action_labels=["washing dishes"])
        assert engine.repository.n_videos == 1
        engine.remove("tmp")
        assert engine.repository.n_videos == 0
