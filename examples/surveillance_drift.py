#!/usr/bin/env python
"""Concept drift on a surveillance stream — why SVAQD exists (§3.3).

A crossroad camera watches for loitering near a car.  Car traffic is calm,
then rush hour hits, then it calms down again: the background probability
of the ``car`` predicate changes mid-stream.  A static SVAQ configured
before the rush hour floods with false positives once traffic spikes;
SVAQD re-estimates the background probability on the fly and raises the
car predicate's critical value through the rush-hour phase.

Run:  python examples/surveillance_drift.py
"""

from repro import OnlineConfig, Query, SceneSpec, TrackSpec, synthesize_video
from repro.core.svaq import SVAQ
from repro.core.svaqd import SVAQD
from repro.detectors.zoo import default_zoo
from repro.eval.metrics import match_sequences


def main() -> None:
    scene = SceneSpec(
        video_id="crossroad-cam",
        duration_s=600.0,
        tracks=(
            TrackSpec(label="loitering", kind="action",
                      occupancy=0.10, mean_duration_s=18.0),
            TrackSpec(
                label="car", kind="object",
                correlate_with="loitering", correlation=0.92,
                # calm -> rush hour -> calm background car traffic
                phases=((0.4, 0.04), (0.3, 0.35), (0.3, 0.04)),
                mean_duration_s=10.0,
            ),
        ),
    )
    video = synthesize_video(scene, seed=3)
    query = Query(objects=["car"], action="loitering")
    truth = video.truth.query_clips(query.objects, query.action, video.meta.geometry)
    print(f"ground truth: {truth.as_tuples()}\n")

    zoo = default_zoo(seed=2)
    config = OnlineConfig().with_p0(1e-4)  # tuned for the calm phase

    svaq = SVAQ(zoo, query, config).run(video)
    report = match_sequences(svaq.sequences, truth)
    print(f"SVAQ  (static p0=1e-4): {len(svaq.sequences)} sequences, "
          f"F1 {report.f1:.2f} (P {report.precision:.2f})")

    svaqd = SVAQD(zoo, query, config).run(video, record_trace=True)
    report = match_sequences(svaqd.sequences, truth)
    print(f"SVAQD (adaptive)      : {len(svaqd.sequences)} sequences, "
          f"F1 {report.f1:.2f} (P {report.precision:.2f})")

    # Show how the car predicate's critical value tracked the traffic.
    trace = [t["car"] for t in svaqd.k_crit_trace]
    phase = len(trace) // 10
    print("\ncar-predicate critical value along the stream:")
    for i in range(0, len(trace), phase):
        print(f"  clip {i:4d}: k_crit = {trace[i]}")
    print(f"\nfinal background estimates: "
          f"{ {k: f'{v:.4f}' for k, v in svaqd.final_rates.items()} }")


if __name__ == "__main__":
    main()
