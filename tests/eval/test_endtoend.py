"""The §5.2 end-to-end cost model."""

from __future__ import annotations

import pytest

from repro.detectors.cost import CostMeter
from repro.eval.endtoend import (
    EndToEndCostModel,
    RuntimeDecomposition,
    decompose_runtime,
)


class TestCostModel:
    def test_training_dominates(self):
        model = EndToEndCostModel()
        minutes = model.query_cost_minutes(n_shots=10_000)
        assert minutes > model.finetune_hours * 60 * 0.99

    def test_fused_f1_capped(self):
        model = EndToEndCostModel(f1_gain=0.04)
        assert model.fused_f1(0.85) == pytest.approx(0.89)
        assert model.fused_f1(0.99) == 1.0

    def test_validation(self):
        with pytest.raises(Exception):
            EndToEndCostModel(finetune_hours=-1)


class TestDecomposition:
    def test_shares(self):
        decomposition = RuntimeDecomposition(inference_ms=980.0, algorithm_ms=20.0)
        assert decomposition.total_ms == 1000.0
        assert decomposition.inference_share == pytest.approx(0.98)

    def test_from_cost_meter(self):
        meter = CostMeter()
        meter.record("I3D", 100, 10.0)
        decomposition = decompose_runtime(meter, algorithm_wall_seconds=0.5)
        assert decomposition.inference_ms == 1000.0
        assert decomposition.algorithm_ms == 500.0

    def test_zero_total(self):
        assert RuntimeDecomposition(0.0, 0.0).inference_share == 0.0
