"""The §4.1 scoring-function contract, property-tested for both schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import MaxScoring, PaperScoring, ScoringScheme
from repro.errors import ConfigurationError

SCHEMES = [PaperScoring(), MaxScoring()]

scores = st.floats(0.0, 100.0)
score_lists = st.lists(scores, min_size=0, max_size=12)


@pytest.mark.parametrize("scheme", SCHEMES, ids=["paper", "max"])
class TestContract:
    @given(clips=st.lists(scores, min_size=1, max_size=10), bump=st.floats(0.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_f_monotone_in_clip_scores(self, scheme: ScoringScheme, clips, bump):
        base = scheme.aggregate(clips)
        raised = list(clips)
        raised[0] += bump
        assert scheme.aggregate(raised) + 1e-9 >= base

    @given(clips=st.lists(scores, min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_subsequence_dominance(self, scheme: ScoringScheme, clips):
        whole = scheme.aggregate(clips)
        for cut in range(1, len(clips)):
            assert whole + 1e-9 >= scheme.aggregate(clips[:cut])

    @given(clips=st.lists(scores, min_size=1, max_size=10), split=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_split_composition(self, scheme: ScoringScheme, clips, split):
        split = min(split, len(clips))
        left = scheme.aggregate(clips[:split])
        right = scheme.aggregate(clips[split:])
        assert scheme.combine(left, right) == pytest.approx(
            scheme.aggregate(clips), rel=1e-9, abs=1e-9
        )

    @given(score=scores, times=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_repeat_matches_aggregate(self, scheme: ScoringScheme, score, times):
        assert scheme.repeat(score, times) == pytest.approx(
            scheme.aggregate([score] * times), rel=1e-9, abs=1e-9
        )

    @given(score=scores)
    @settings(max_examples=20, deadline=None)
    def test_identity_neutral(self, scheme: ScoringScheme, score):
        assert scheme.combine(scheme.identity, score) == pytest.approx(score)

    @given(action=scores, objects=st.lists(scores, min_size=1, max_size=5),
           bump=st.floats(0.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_g_monotone(self, scheme: ScoringScheme, action, objects, bump):
        base = scheme.clip_score(action, objects)
        assert scheme.clip_score(action + bump, objects) + 1e-9 >= base
        raised = list(objects)
        raised[0] += bump
        assert scheme.clip_score(action, raised) + 1e-9 >= base

    def test_repeat_negative_rejected(self, scheme: ScoringScheme):
        with pytest.raises(ConfigurationError):
            scheme.repeat(1.0, -1)


class TestPaperScoringSpecifics:
    def test_h_additive(self):
        scheme = PaperScoring()
        assert scheme.object_clip_score([0.5, 0.25]) == 0.75
        assert scheme.action_clip_score([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_g_formula(self):
        scheme = PaperScoring()
        assert scheme.clip_score(2.0, [1.0, 3.0]) == 8.0

    def test_action_only_query(self):
        assert PaperScoring().clip_score(2.5, []) == 2.5

    def test_negative_scores_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperScoring().clip_score(-1.0, [1.0])


class TestMaxScoringSpecifics:
    def test_h_max(self):
        scheme = MaxScoring()
        assert scheme.object_clip_score([0.5, 0.25]) == 0.5
        assert scheme.object_clip_score([]) == 0.0

    def test_sequence_scores_best_clip(self):
        scheme = MaxScoring()
        assert scheme.aggregate([1.0, 5.0, 2.0]) == 5.0
