"""RVAQ — ranked top-K video action queries over a pre-processed store
(Algorithm 4).

Given the per-label individual sequences and clip score tables produced at
ingestion (§4.2), RVAQ

1. intersects the individual sequences into the query's result sequences
   ``P_q`` (Eq. 12, an interval sweep);
2. maintains, per sequence, upper and lower score bounds refined by each
   ``(c_top, c_btm)`` pair the TBClip iterator yields (Eqs. 13–14);
3. tracks the decision frontier with the two priority sets
   ``PQ_lo^K`` / ``PQ_up^¬K`` and stops as soon as the K best lower bounds
   dominate every other sequence's upper bound (Eq. 15);
4. grows the skip set ``C_skip`` with the clips of sequences decided either
   way, sparing TBClip any further work on them (§4.3).

Execution strategy (the vectorised offline path): sequence bounds live in
NumPy columns, one slot per sequence of ``P_q``.  Each TBClip pair is
folded into the (at most two) touched slots with the scalar ⊙, and the
Eq. 13–14 refresh plus the whole ``PQ_lo^K`` / ``PQ_up^¬K`` frontier —
``b_lo^K`` as a k-th order statistic, ``b_up^¬K`` as a masked maximum, the
decided-in/out sweeps as boolean masks — run as array kernels instead of a
Python re-sort per pair.  The kernels perform the same IEEE operations per
element as the scalar path (see :mod:`repro.core.scoring`), so serial
results — ranked tuples, ``AccessStats``, ``iterations`` — are
bit-identical to the original row-at-a-time implementation, preserved as
:class:`repro.core.rvaq_reference.ReferenceRVAQ` and enforced by the
equivalence suite in ``tests/core/test_rvaq_equivalence.py``.

``C_skip`` is interval-backed (:class:`~repro.utils.intervals.IntervalSkipSet`)
by default — membership by binary search over runs instead of a point set
over nearly the whole repository; ``skip_backend="points"`` keeps the
point-``set`` representation for differential testing.

``RankingConfig.tbclip_batch`` drains B certified pairs per iterator call.
``B = 1`` (the default) is exactly the serial algorithm; with ``B > 1``
the skip set grows only between batches, so access counts may exceed the
serial ones while the ranked output is unchanged — ``iterations`` still
counts processed pairs, not iterator calls.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.core.tbclip import TBClipIterator
from repro.errors import ConfigurationError, QueryError
from repro.storage.access import AccessStats
from repro.storage.repository import VideoRepository
from repro.utils.intervals import (
    Interval,
    IntervalSet,
    IntervalSkipSet,
    intersect_all,
)


@dataclass(frozen=True)
class RankedSequence:
    """One answer sequence with its (possibly bounded) score."""

    interval: Interval
    lower_bound: float
    upper_bound: float

    @property
    def exact(self) -> bool:
        return self.lower_bound == self.upper_bound

    @property
    def score(self) -> float:
        """The ranking score: the proven lower bound (exact when closed)."""
        return self.lower_bound


@dataclass(frozen=True)
class TopKResult:
    """Output of one RVAQ (or baseline) execution."""

    query: Query
    ranked: tuple[RankedSequence, ...]
    stats: AccessStats
    p_q: IntervalSet
    iterations: int = 0

    @property
    def sequences(self) -> IntervalSet:
        return IntervalSet(r.interval for r in self.ranked)


class _BoundColumns:
    """Per-sequence bound state as aligned NumPy columns.

    Slot ``i`` tracks sequence ``i`` of ``P_q`` (in start order):
    ``up_partial`` / ``lo_partial`` are the aggregated scores of the clips
    folded from the top / bottom walks (``S_up`` / ``S_lo``),
    ``up_missing`` / ``lo_missing`` the clips each bound has not yet
    counted (``L_up`` / ``L_lo``), and ``upper`` / ``lower`` the current
    Eq. 13–14 bounds.  ``live`` is True while the sequence is undecided;
    decided slots keep their frozen bounds and are masked out of every
    refresh.
    """

    __slots__ = (
        "intervals",
        "starts",
        "up_partial",
        "lo_partial",
        "up_missing",
        "lo_missing",
        "upper",
        "lower",
        "live",
    )

    def __init__(self, p_q: IntervalSet, identity: float) -> None:
        self.intervals: list[Interval] = list(p_q)
        self.starts: list[int] = [iv.start for iv in self.intervals]
        n = len(self.intervals)
        lengths = np.asarray([len(iv) for iv in self.intervals], dtype=np.int64)
        self.up_partial = np.full(n, identity, dtype=np.float64)
        self.lo_partial = np.full(n, identity, dtype=np.float64)
        self.up_missing = lengths.copy()
        self.lo_missing = lengths.copy()
        self.upper = np.full(n, np.inf, dtype=np.float64)
        self.lower = np.full(n, -np.inf, dtype=np.float64)
        self.live = np.ones(n, dtype=bool)

    def __len__(self) -> int:
        return len(self.intervals)

    def locate(self, cid: int) -> int | None:
        """Slot of the sequence containing a clip id (binary search)."""
        pos = bisect_right(self.starts, cid) - 1
        if pos >= 0 and cid in self.intervals[pos]:
            return pos
        return None


class RVAQ:
    """Algorithm 4 over a :class:`VideoRepository`."""

    def __init__(
        self,
        repository: VideoRepository,
        scoring: ScoringScheme | None = None,
        config: RankingConfig | None = None,
        *,
        enable_skip: bool = True,
        skip_backend: str = "interval",
    ) -> None:
        if skip_backend not in ("interval", "points"):
            raise ConfigurationError(
                f"skip_backend must be interval/points; got {skip_backend!r}"
            )
        self._repo = repository
        self._scoring = scoring or PaperScoring()
        self._config = config or RankingConfig()
        self._enable_skip = enable_skip
        self._skip_backend = skip_backend

    # -- public API ----------------------------------------------------------------

    @staticmethod
    def _split_labels(query: Query) -> tuple[str, list[str]]:
        """The primary action plus every other predicate label.

        Extra actions (the footnote-3 multi-action extension) rank through
        the same machinery as object predicates: their per-clip scores
        enter ``g`` alongside the object scores, and their individual
        sequences join the Eq. 12 intersection.
        """
        if not query.actions:
            raise QueryError("RVAQ expects at least one action predicate")
        primary, *extra = query.actions
        return primary, [*extra, *query.objects, *query.relationships]

    def result_sequences(self, query: Query) -> IntervalSet:
        """``P_q = P_a ⊗ P_o1 ⊗ … ⊗ P_oI`` (Eq. 12) in global clip ids."""
        primary, others = self._split_labels(query)
        sets = [self._repo.sequences(primary)]
        sets.extend(self._repo.sequences(label) for label in others)
        return intersect_all(sets)

    def top_k(self, query: Query, k: int | None = None) -> TopKResult:
        """The K highest-scoring result sequences (Algorithm 4)."""
        if k is None:
            k = self._config.default_k
        if k <= 0:
            raise QueryError(f"k must be positive; got {k}")
        scoring = self._scoring
        p_q = self.result_sequences(query)
        stats = AccessStats()
        if not p_q:
            return TopKResult(query=query, ranked=(), stats=stats, p_q=p_q)

        cols = _BoundColumns(p_q, scoring.identity)

        # C_skip starts as every repository clip outside P_q (§4.3).
        outside = self._repo.all_clips().difference(p_q)
        if self._skip_backend == "interval":
            skip = IntervalSkipSet(outside)
        else:
            skip = set(outside.points())
        primary, others = self._split_labels(query)
        iterator = TBClipIterator(
            action_table=self._repo.table(primary),
            object_tables=[self._repo.table(label) for label in others],
            scoring=scoring,
            skip=skip,
            stats=stats,
            # With K >= |P_q| membership is settled and only score
            # exactness remains, which the top drain alone provides.
            need_bottom=len(cols) > k,
        )

        batch = self._config.tbclip_batch
        iterations = 0
        running = True
        while running:
            pairs, done = iterator.next_batch(batch)
            last = len(pairs) - 1
            for idx, (c_top, s_top, c_btm, s_btm) in enumerate(pairs):
                iterations += 1
                if done and idx == last:
                    running = False  # every clip of P_q processed: exact
                    break
                if c_top is not None:
                    self._fold_top(cols, c_top, s_top)
                if c_btm is not None:
                    self._fold_bottom(cols, c_btm, s_btm)
                self._refresh_bounds(cols, s_top, s_btm, c_top, c_btm)
                if self._apply_decisions(cols, skip, k):
                    running = False
                    break

        lower, upper = cols.lower, cols.upper
        ranked = sorted(
            range(len(cols)),
            key=lambda i: (lower[i], upper[i]),
            reverse=True,
        )[:k]
        return TopKResult(
            query=query,
            ranked=tuple(
                RankedSequence(
                    interval=cols.intervals[i],
                    lower_bound=float(lower[i]),
                    upper_bound=float(upper[i]),
                )
                for i in ranked
            ),
            stats=stats,
            p_q=p_q,
            iterations=iterations,
        )

    # -- bound maintenance ----------------------------------------------------------

    def _fold_top(self, cols: _BoundColumns, cid: int, score: float) -> None:
        pos = cols.locate(cid)
        if pos is None:
            return
        cols.up_partial[pos] = self._scoring.combine(
            float(cols.up_partial[pos]), score
        )
        cols.up_missing[pos] -= 1

    def _fold_bottom(self, cols: _BoundColumns, cid: int, score: float) -> None:
        pos = cols.locate(cid)
        if pos is None:
            return
        cols.lo_partial[pos] = self._scoring.combine(
            float(cols.lo_partial[pos]), score
        )
        cols.lo_missing[pos] -= 1

    def _refresh_bounds(
        self,
        cols: _BoundColumns,
        s_top: float,
        s_btm: float,
        c_top: int | None,
        c_btm: int | None,
    ) -> None:
        """Eqs. 13–14, plus the sub-sequence dominance strengthening.

        Upper bound: every clip not yet seen from the top scores at most
        ``s_top`` (Eq. 13).  Lower bound: the best of

        * Eq. 14 — every clip not yet seen from the bottom scores at least
          ``s_btm``;
        * the aggregate of the clips already folded from either direction —
          a *sub-sequence* of the sequence, whose score the full sequence
          dominates by the §4.1 contract.  This makes the leader's lower
          bound grow with the fast top walk instead of waiting for the
          bottom walk to reach its (high-scoring) clips, which is what lets
          ``C_skip`` prune losing sequences early.

        All terms are evaluated over the full columns and masked onto the
        ``live`` slots, leaving decided sequences' bounds frozen.
        """
        scoring = self._scoring
        live = cols.live
        if c_top is not None:
            cand_upper = scoring.combine_block(
                scoring.repeat_block(s_top, cols.up_missing), cols.up_partial
            )
            np.copyto(cols.upper, cand_upper, where=live)
        exact_up = cols.up_missing == 0
        np.copyto(cols.upper, cols.up_partial, where=live & exact_up)
        # The sub-sequence dominance terms; a separate lo_missing == 0 case
        # is not needed — it would re-apply the lo_partial floor already in
        # this maximum.
        cand = np.maximum(cols.up_partial, cols.lo_partial)
        if c_btm is not None:
            cand = np.maximum(
                cand,
                scoring.combine_block(
                    scoring.repeat_block(s_btm, cols.lo_missing),
                    cols.lo_partial,
                ),
            )
        cand = np.where(exact_up, cols.upper, cand)  # all folded: exact
        np.copyto(cols.lower, np.maximum(cols.lower, cand), where=live)

    # -- decision frontier ---------------------------------------------------------------

    def _apply_decisions(
        self,
        cols: _BoundColumns,
        skip: "IntervalSkipSet | set[int]",
        k: int,
        floor: float = float("-inf"),
    ) -> bool:
        """Maintain ``PQ_lo^K`` / ``PQ_up^¬K``, grow ``C_skip`` and test the
        stopping condition (Eq. 15).

        ``PQ_lo^K`` materialises as the k-th order statistic ``b_lo^K``
        (one ``np.partition``) plus the membership mask of the current top
        set; ``PQ_up^¬K`` as the masked maximum ``b_up^¬K`` over the rest.
        Ties on ``b_lo^K`` resolve to the lowest slot indices — exactly the
        stable descending sort of the scalar implementation.

        ``floor`` is an *external* proven lower bound on the global K-th
        answer score — the scatter-gather coordinator's composed bound
        (:mod:`repro.core.distributed`).  Sequences whose upper bound falls
        strictly below ``max(b_lo^K, floor)`` are decided out; with the
        default ``-inf`` the behaviour (and the single-repository results)
        are untouched.
        """
        lower, upper = cols.lower, cols.upper
        n = len(cols)
        if n >= k:
            b_lo_k = float(np.partition(lower, n - k)[n - k])
        else:
            b_lo_k = float("-inf")
        top_mask = lower > b_lo_k
        short = k - int(top_mask.sum())
        if short > 0:
            top_mask[np.flatnonzero(lower == b_lo_k)[:short]] = True
        if n > k:
            b_up_not_k = float(upper.max(where=~top_mask, initial=-np.inf))
        else:
            b_up_not_k = float("-inf")

        if self._enable_skip:
            live = cols.live
            out_new = live & (upper < max(b_lo_k, floor))
            if (
                n > k
                and not self._config.require_exact_scores
            ):
                in_new = live & ~out_new & top_mask & (lower > b_up_not_k)
            else:
                in_new = np.zeros(n, dtype=bool)
            decided = out_new | in_new
            if decided.any():
                cols.live = live & ~decided
                for i in np.flatnonzero(decided):
                    interval = cols.intervals[i]
                    if isinstance(skip, IntervalSkipSet):
                        skip.add(interval)
                    else:
                        skip.update(iter(interval))

        if n <= k:
            # Every sequence is in the answer; keep refining until scores
            # are exact — this is why RVAQ converges to Pq-Traverse as K
            # approaches the number of result sequences (Table 8's last
            # column).
            return bool((lower == upper).all())
        if b_lo_k < b_up_not_k:
            return False
        if self._config.require_exact_scores:
            # Membership is decided; keep refining the winners until their
            # scores (and hence their order) are exact.
            return bool((lower[top_mask] == upper[top_mask]).all())
        return True
