"""RL005 fixture — linted under a fake src/repro/core path by the tests."""

import math

import numpy as np


def bad_float_literal(score):
    return score == 0.5  # line 9: finding


def bad_mean_compare(a, b):
    return np.mean(a) == np.mean(b)  # line 13: finding


def bad_float_cast(threshold, configured):
    return float(threshold) != configured  # line 17: finding


def good_intent_bit_identity(a, b):
    return np.array_equal(a, b)


def good_intent_tolerance(a, b):
    return np.allclose(a, b) and math.isclose(float(a[0]), float(b[0]))


def good_integer_compare(count):
    return count == 0


def good_pragma_sentinel(weight):
    return weight == 0.0  # reprolint: disable=RL005
