"""The exact transfer-matrix scan tail (the validator itself gets
validated against Monte Carlo and hand computations)."""

from __future__ import annotations

import pytest

from repro.errors import ScanStatisticsError
from repro.scanstats.exact import MAX_EXACT_WINDOW, exact_scan_tail
from repro.scanstats.montecarlo import monte_carlo_scan_tail


class TestHandComputable:
    def test_w1(self):
        # S_1(N) >= 1 iff any success occurs.
        assert exact_scan_tail(1, 1, 3, 0.5) == pytest.approx(1 - 0.5**3)

    def test_window_equals_n(self):
        # One window: plain binomial tail.
        # P(Bin(3, .5) >= 2) = 4/8
        assert exact_scan_tail(2, 3, 3, 0.5) == pytest.approx(0.5)

    def test_two_in_two_of_three(self):
        # Windows (1,2), (2,3); success prob p each trial.
        # P = P(x1x2) + P(x2x3) - P(x1x2x3) with xi iid
        p = 0.3
        expected = 2 * p * p - p**3
        assert exact_scan_tail(2, 2, 3, p) == pytest.approx(expected)

    def test_degenerate_probabilities(self):
        assert exact_scan_tail(1, 3, 10, 0.0) == 0.0
        assert exact_scan_tail(3, 3, 10, 1.0) == 1.0


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "k,w,n,p",
        [(3, 6, 60, 0.1), (2, 8, 40, 0.05), (5, 10, 100, 0.15)],
    )
    def test_close(self, k, w, n, p):
        mc = monte_carlo_scan_tail(k, w, n, p, replications=40_000, seed=2)
        assert exact_scan_tail(k, w, n, p) == pytest.approx(mc, abs=0.01)


class TestValidation:
    def test_window_cap(self):
        with pytest.raises(ScanStatisticsError):
            exact_scan_tail(2, MAX_EXACT_WINDOW + 1, 100, 0.1)

    def test_requires_exactly_one_model(self):
        with pytest.raises(ScanStatisticsError):
            exact_scan_tail(2, 5, 10)  # neither p nor transition
        with pytest.raises(ScanStatisticsError):
            exact_scan_tail(2, 5, 10, 0.1, transition=lambda _l: 0.1)

    def test_edge_quotas(self):
        assert exact_scan_tail(0, 5, 10, 0.1) == 1.0
        assert exact_scan_tail(6, 5, 10, 0.1) == 0.0


class TestMarkovTransition:
    def test_iid_equivalence(self):
        iid = exact_scan_tail(3, 6, 50, 0.1)
        markov = exact_scan_tail(
            3, 6, 50, transition=lambda _last: 0.1, initial_success=0.1
        )
        assert markov == pytest.approx(iid, abs=1e-12)

    def test_positive_correlation_raises_tail(self):
        # Same marginal rate, clumpier events -> clusters more likely.
        p = 0.1
        p11 = 0.5
        p01 = p * (1 - p11) / (1 - p)
        bursty = exact_scan_tail(
            3, 6, 60,
            transition=lambda last: p11 if last else p01,
            initial_success=p,
        )
        iid = exact_scan_tail(3, 6, 60, p)
        assert bursty > iid
