"""Algorithm 3 — SVAQD: SVAQ with dynamic background-probability updates.

Every query predicate owns an exponential-kernel rate estimator (§3.3,
Eq. 6).  Per clip, SVAQD evaluates the predicates against the *current*
critical values, folds the observed event counts into the estimators, and
recomputes the critical values from the refreshed background probabilities
(Algorithm 3, lines 7–9).  The initial probabilities ``p_obj₀ / p_act₀``
only matter for the first ~bandwidth occurrence units — the insensitivity
Figure 2 demonstrates — and sudden stream changes are absorbed within the
kernel bandwidth while gradual drift is smoothed (concept-drift handling).

Three implementation decisions the paper leaves open, all configurable via
:class:`repro.core.config.OnlineConfig` (see there for rationale):

* **which clips are null data** (``update_on`` + the one-clip guard band
  around detections) — §3.2 defines the background as the prediction
  distribution "when the query predicates are not satisfied";
* **probe cadence** (``probe_every``) — periodic full evaluation so
  short-circuiting cannot starve later predicates' estimators;
* the lenient background quota (``alpha_background``) separating "null"
  from "gray-zone" clips.

The quota machinery itself lives in :mod:`repro.core.dynamics` and is
shared with the compound-query executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import OnlineConfig
from repro.core.query import Query
from repro.core.svaq import OnlineResult
from repro.detectors.zoo import ModelZoo
from repro.video.stream import ClipStream
from repro.video.synthesis import LabeledVideo


@dataclass
class SVAQD:
    """Algorithm 3.  Construct once per query; ``run`` per video stream."""

    zoo: ModelZoo
    query: Query
    config: OnlineConfig = field(default_factory=OnlineConfig)

    def run(
        self,
        video: LabeledVideo,
        *,
        stream: ClipStream | None = None,
        short_circuit: bool = True,
        record_trace: bool = False,
    ) -> OnlineResult:
        """Process a stream with dynamic parameter adjustment.

        ``record_trace`` captures the critical values in force at every
        clip (used by the adaptivity experiments); it costs memory
        proportional to the number of clips.
        """
        from repro.core.session import SvaqdSession

        session = SvaqdSession(self.zoo, self.query, video, self.config)
        clips = stream if stream is not None else ClipStream(video.meta)
        trace: list[Mapping[str, int]] = []
        while not clips.end():
            clip = clips.next()
            if record_trace:
                trace.append(session.quotas())
            session.process(clip, short_circuit=short_circuit)
        result = session.finish()
        if record_trace:
            result = OnlineResult(
                query=result.query,
                video_id=result.video_id,
                sequences=result.sequences,
                evaluations=result.evaluations,
                k_crit_trace=tuple(trace),
                final_rates=result.final_rates,
            )
        return result
