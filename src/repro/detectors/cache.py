"""Cross-query detection score cache — the shared half of the online hot
path.

The paper's online algorithms charge one model invocation per predicate per
clip (Algorithm 2).  When many queries watch the same stream — the
monitoring deployments of *Video Monitoring Queries* (Koudas et al.) — most
of those invocations ask a model a question it has already answered for
another session: "how many frames of clip ``c`` show a ``car``?".

:class:`DetectionScoreCache` materialises, per ``(detector kind, label)``,
a **count column**: the number of above-threshold predictions inside every
clip of one video.  Columns are built lazily in chunks of
``chunk_clips`` clips with one vectorised reshape/sum pass over the
model's full score vector, so each frame/shot is *scored* by a model at
most once per process, and each clip's count is computed at most once per
cache.

Metering stays exact (the Table-8 invariant).  Scoring work and
*charging* are decoupled: materialising a chunk charges nothing; a
session is charged when it **evaluates** a predicate on a clip, exactly
as the serial Algorithm-2 path charges it.  The first evaluation of a
``(kind, label, clip)`` anywhere in the process charges *fresh* model
units to the :class:`~repro.detectors.cost.CostMeter` (same units, same
``ms_per_unit`` as the uncached path); every later evaluation — another
session re-asking — records the same units as *cached* via
:meth:`CostMeter.record_cached`.  Hence for any workload::

    serial fresh units  ==  shared fresh units + shared cached units

per model, and a single session over a cold cache meters identically to
the uncached serial path.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.detectors.zoo import ModelZoo
from repro.errors import ConfigurationError, CorruptedOutputError
from repro.video.ground_truth import GroundTruth
from repro.video.model import VideoMeta
from repro._typing import StateDict

if TYPE_CHECKING:  # pragma: no cover - layering: detectors must not pull core
    from repro.core.config import OnlineConfig

_KINDS = ("object", "action")


def _runs_of(mask: np.ndarray) -> list[list[int]]:
    """Encode a boolean array as inclusive ``[start, end]`` runs of True."""
    if not mask.any():
        return []
    padded = np.diff(np.concatenate(([0], mask.view(np.int8), [0])))
    starts = np.flatnonzero(padded == 1)
    ends = np.flatnonzero(padded == -1) - 1
    return [[int(s), int(e)] for s, e in zip(starts, ends)]


class DetectionScoreCache:
    """Per-video, per-``(kind, label)`` columns of per-clip detection counts.

    One cache serves any number of sessions over the same video, provided
    they agree on the detection thresholds (validated when an evaluator
    attaches).  Materialisation is guarded by a lock so the thread
    executor of :meth:`repro.core.engine.OnlineEngine.run_queries_many`
    could share one safely, though the intended deployment is one cache
    per video stream.
    """

    #: Not checkpointed (RL002): the zoo/video/truth handles and the
    #: threshold/chunk/unit geometry are constructor inputs — the caller
    #: rebuilds the cache identically before ``load_state_dict``, which
    #: restores only the mutable charge bookkeeping (count columns are
    #: re-materialised on demand and scored identically by construction).
    _CHECKPOINT_EXCLUDE = frozenset(
        {"_zoo", "_video", "_truth", "_thresholds", "_chunk", "_units", "_lock"}
    )

    def __init__(
        self,
        zoo: ModelZoo,
        video: VideoMeta,
        truth: GroundTruth,
        *,
        object_threshold: float,
        action_threshold: float,
        chunk_clips: int = 64,
    ) -> None:
        if chunk_clips < 1:
            raise ConfigurationError(
                f"chunk_clips must be >= 1; got {chunk_clips}"
            )
        self._zoo = zoo
        self._video = video
        self._truth = truth
        self._thresholds = {
            "object": float(object_threshold),
            "action": float(action_threshold),
        }
        self._chunk = int(chunk_clips)
        n_clips = video.n_clips
        self._n_clips = n_clips
        self._units = {
            "object": video.geometry.frames_per_clip,
            "action": video.geometry.shots_per_clip,
        }
        self._n_chunks = -(-n_clips // self._chunk)
        #: (kind, label) -> int64 per-clip count column (chunk-materialised)
        self._counts: dict[tuple[str, str], np.ndarray] = {}
        #: (kind, label) -> bytearray flagging materialised chunks
        self._ready: dict[tuple[str, str], bytearray] = {}
        #: (kind, label) -> bool column: fresh units already charged
        self._charged: dict[tuple[str, str], np.ndarray] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------------

    @classmethod
    def for_video(
        cls,
        zoo: ModelZoo,
        video: "LabeledVideo",
        config: "OnlineConfig | None" = None,
        *,
        chunk_clips: int | None = None,
    ) -> "DetectionScoreCache":
        """A cache for one :class:`~repro.video.synthesis.LabeledVideo`,
        with thresholds resolved the way :class:`ClipEvaluator` resolves
        them (config override, else the deployed profile's).

        ``chunk_clips`` overrides the config's chunk size — callers that
        support the ``cache_chunk_clips=0`` auto-planning sentinel resolve
        it (:func:`repro.core.optimizer.resolved_chunk_clips`) before
        constructing the cache, since this module must not import core.
        """
        from repro.core.config import OnlineConfig

        config = config or OnlineConfig()
        return cls(
            zoo,
            video.meta,
            video.truth,
            object_threshold=(
                config.object_threshold
                if config.object_threshold is not None
                else zoo.detector.threshold
            ),
            action_threshold=(
                config.action_threshold
                if config.action_threshold is not None
                else zoo.recognizer.threshold
            ),
            chunk_clips=(
                chunk_clips if chunk_clips is not None
                else config.cache_chunk_clips
            ),
        )

    # -- introspection -----------------------------------------------------------

    @property
    def video_id(self) -> str:
        return self._video.video_id

    @property
    def n_clips(self) -> int:
        return self._n_clips

    @property
    def chunk_clips(self) -> int:
        """Clips per lazily-materialised block (the vectorisation grain)."""
        return self._chunk

    def threshold(self, kind: str) -> float:
        return self._thresholds[kind]

    def units_per_clip(self, kind: str) -> int:
        return self._units[kind]

    def check_compatible(
        self,
        video: VideoMeta,
        *,
        object_threshold: float,
        action_threshold: float,
    ) -> None:
        """Reject attaching an evaluator whose video or thresholds differ —
        a shared column must answer every session's question identically."""
        if video.video_id != self._video.video_id:
            raise ConfigurationError(
                f"cache holds video {self._video.video_id!r}, "
                f"not {video.video_id!r}"
            )
        if video.geometry != self._video.geometry:
            raise ConfigurationError(
                f"cache geometry differs for video {video.video_id!r}"
            )
        if (
            # Exact identity on purpose: sessions sharing a cache must be
            # configured with the *same* thresholds, not nearby ones.
            float(object_threshold) != self._thresholds["object"]  # reprolint: disable=RL005
            or float(action_threshold) != self._thresholds["action"]  # reprolint: disable=RL005
        ):
            raise ConfigurationError(
                "detection thresholds differ from the shared cache's; "
                "sessions sharing a cache must share thresholds"
            )

    # -- the hot path -------------------------------------------------------------

    def lookup(self, kind: str, label: str, clip_id: int) -> tuple[int, int, bool]:
        """Count and units for one predicate on one clip, with charging.

        Returns ``(count, units, fresh)``.  ``fresh`` is True when this is
        the first evaluation of ``(kind, label, clip_id)`` through this
        cache: fresh model units are charged to the zoo's cost meter at
        the model's per-unit latency, exactly as the uncached
        ``score_clip`` path charges them.  Later evaluations record the
        same units as cached.
        """
        key = (kind, label)
        col = self._counts.get(key)
        if col is None or not self._ready[key][clip_id // self._chunk]:
            self._materialise(kind, label, clip_id)
            col = self._counts[key]
        units = self._units[kind]
        charged = self._charged[key]
        fresh = not charged[clip_id]
        model = self._zoo.detector if kind == "object" else self._zoo.recognizer
        if fresh:
            charged[clip_id] = True
            self._zoo.cost_meter.record(
                model.name, units, model.profile.ms_per_unit
            )
        else:
            self._zoo.cost_meter.record_cached(model.name, units)
        return int(col[clip_id]), units, fresh

    def counts_block(
        self, kind: str, label: str, lo: int, hi: int
    ) -> np.ndarray:
        """Charge-free count column slice for clips ``[lo, hi)``,
        materialising any missing chunks.  The vectorised evaluator reads
        whole blocks through this instead of per-clip :meth:`lookup`."""
        key = (kind, label)
        first = lo // self._chunk
        last = (hi - 1) // self._chunk
        ready = self._ready.get(key)
        if ready is None or not all(ready[first : last + 1]):
            for chunk in range(first, last + 1):
                ready = self._ready.get(key)
                if ready is None or not ready[chunk]:
                    self._materialise(kind, label, chunk * self._chunk)
        return self._counts[key][lo:hi]

    def charge_block(
        self, kind: str, label: str, lo: int, evaluated: np.ndarray
    ) -> np.ndarray:
        """Bulk equivalent of :meth:`lookup`'s charging for one label over
        clips ``[lo, lo + len(evaluated))``.

        ``evaluated`` flags the clips Algorithm 2 actually evaluated (a
        short-circuited clip charges nothing, exactly as in the serial
        path).  Evaluated clips not yet charged anywhere in the process
        charge fresh model units in one meter record; already-charged ones
        record as cached.  Totals are identical to per-clip charging.
        Returns the boolean fresh mask (aligned with ``evaluated``).
        """
        key = (kind, label)
        span = self._charged[key][lo : lo + len(evaluated)]
        fresh = evaluated & ~span
        n_fresh = int(fresh.sum())
        n_cached = int(evaluated.sum()) - n_fresh
        span |= fresh
        units = self._units[kind]
        model = self._zoo.detector if kind == "object" else self._zoo.recognizer
        meter = self._zoo.cost_meter
        if n_fresh:
            meter.record(model.name, n_fresh * units, model.profile.ms_per_unit)
        if n_cached:
            meter.record_cached(model.name, n_cached * units)
        return fresh

    def refund_block(
        self,
        kind: str,
        label: str,
        lo: int,
        fresh: np.ndarray,
        cached: np.ndarray,
    ) -> None:
        """Reverse a :meth:`charge_block` charge for one label over clips
        ``[lo, lo + len(fresh))``.

        ``fresh``/``cached`` are the masks a prior charge attributed (the
        evaluator keeps them per materialised chunk).  Fresh clips give
        back their meter units *and* clear their charged bits, so the next
        evaluation — under a different short-circuit regime, say — charges
        them fresh again exactly once; cached clips only give back cached
        units.  This is how a chunked session un-pays for buffer rows it
        never consumed (mid-chunk invalidation) without perturbing any
        other session's accounting.
        """
        key = (kind, label)
        n_fresh = int(fresh.sum())
        n_cached = int(cached.sum())
        if n_fresh:
            self._charged[key][lo : lo + len(fresh)] &= ~fresh
        units = self._units[kind]
        model = self._zoo.detector if kind == "object" else self._zoo.recognizer
        meter = self._zoo.cost_meter
        if n_fresh:
            meter.refund(model.name, n_fresh * units, model.profile.ms_per_unit)
        if n_cached:
            meter.refund_cached(model.name, n_cached * units)

    def counts(self, kind: str, label: str, clip_id: int) -> tuple[int, int]:
        """Charge-free peek at one clip's count (diagnostics, tests)."""
        key = (kind, label)
        col = self._counts.get(key)
        if col is None or not self._ready[key][clip_id // self._chunk]:
            self._materialise(kind, label, clip_id)
            col = self._counts[key]
        return int(col[clip_id]), self._units[kind]

    def _materialise(self, kind: str, label: str, clip_id: int) -> None:
        """Build the chunk of the count column containing ``clip_id``.

        One vectorised pass: threshold the model's (already memoised) full
        score vector over the chunk's span, reshape to
        ``(clips, units_per_clip)`` and sum — each clip's Eq. 1/2 count in
        one shot.  Scoring charges nothing; charging follows evaluation.
        """
        key = (kind, label)
        with self._lock:
            col = self._counts.get(key)
            if col is None:
                col = np.zeros(self._n_clips, dtype=np.int64)
                self._counts[key] = col
                self._ready[key] = bytearray(self._n_chunks)
                self._charged[key] = np.zeros(self._n_clips, dtype=bool)
            chunk = clip_id // self._chunk
            if self._ready[key][chunk]:
                return
            units = self._units[kind]
            lo_clip = chunk * self._chunk
            hi_clip = min(self._n_clips, lo_clip + self._chunk)
            if kind == "object":
                scores = self._zoo.detector.score_video(
                    self._video, self._truth, label
                )
            else:
                scores = self._zoo.recognizer.score_video(
                    self._video, self._truth, label
                )
            span = scores[lo_clip * units : hi_clip * units]
            if not np.isfinite(span).all():
                # Corrupted model output must not become count-column
                # truth; the chunk stays unmaterialised (nothing was
                # written), so a retried lookup re-scores it cleanly.
                raise CorruptedOutputError(
                    f"{kind} scores for {label!r} contain non-finite "
                    f"values in clips [{lo_clip}, {hi_clip})"
                )
            mask = span >= self._thresholds[kind]
            col[lo_clip:hi_clip] = mask.reshape(-1, units).sum(axis=1)
            self._ready[key][chunk] = True

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> StateDict:
        """JSON-serialisable charge bookkeeping (counts are derived data
        and rebuild identically; only *who has been charged* is state)."""
        return {
            "charged": {
                f"{kind}:{label}": _runs_of(charged)
                for (kind, label), charged in self._charged.items()
                if charged.any()
            }
        }

    def load_state_dict(self, state: StateDict) -> None:
        """Mark clips as already-fresh-charged without charging the meter
        (their units were metered before the checkpoint was taken)."""
        for key, runs in state.get("charged", {}).items():
            kind, _, label = key.partition(":")
            if kind not in _KINDS:
                raise ConfigurationError(
                    f"unknown detector kind {kind!r} in cache checkpoint"
                )
            cache_key = (kind, label)
            if cache_key not in self._charged:
                self._charged[cache_key] = np.zeros(self._n_clips, dtype=bool)
                self._counts.setdefault(
                    cache_key, np.zeros(self._n_clips, dtype=np.int64)
                )
                self._ready.setdefault(cache_key, bytearray(self._n_chunks))
            charged = self._charged[cache_key]
            for start, end in runs:
                charged[start : end + 1] = True
