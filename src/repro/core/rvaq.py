"""RVAQ — ranked top-K video action queries over a pre-processed store
(Algorithm 4).

Given the per-label individual sequences and clip score tables produced at
ingestion (§4.2), RVAQ

1. intersects the individual sequences into the query's result sequences
   ``P_q`` (Eq. 12, an interval sweep);
2. maintains, per sequence, upper and lower score bounds refined by each
   ``(c_top, c_btm)`` pair the TBClip iterator yields (Eqs. 13–14);
3. tracks the decision frontier with the two priority sets
   ``PQ_lo^K`` / ``PQ_up^¬K`` and stops as soon as the K best lower bounds
   dominate every other sequence's upper bound (Eq. 15);
4. grows the skip set ``C_skip`` with the clips of sequences decided either
   way, sparing TBClip any further work on them (§4.3).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.core.config import RankingConfig
from repro.core.query import Query
from repro.core.scoring import PaperScoring, ScoringScheme
from repro.core.tbclip import TBClipIterator
from repro.errors import QueryError
from repro.storage.access import AccessStats
from repro.storage.repository import VideoRepository
from repro.utils.intervals import Interval, IntervalSet, intersect_all


@dataclass(frozen=True)
class RankedSequence:
    """One answer sequence with its (possibly bounded) score."""

    interval: Interval
    lower_bound: float
    upper_bound: float

    @property
    def exact(self) -> bool:
        return self.lower_bound == self.upper_bound

    @property
    def score(self) -> float:
        """The ranking score: the proven lower bound (exact when closed)."""
        return self.lower_bound


@dataclass(frozen=True)
class TopKResult:
    """Output of one RVAQ (or baseline) execution."""

    query: Query
    ranked: tuple[RankedSequence, ...]
    stats: AccessStats
    p_q: IntervalSet
    iterations: int = 0

    @property
    def sequences(self) -> IntervalSet:
        return IntervalSet(r.interval for r in self.ranked)


@dataclass
class _SequenceState:
    """Mutable bound-tracking state for one sequence of ``P_q``."""

    interval: Interval
    up_partial: float  # S_up: aggregated scores of processed top clips
    lo_partial: float  # S_lo: aggregated scores of processed bottom clips
    up_missing: int  # L_up: clips not yet counted into the upper bound
    lo_missing: int  # L_lo: clips not yet counted into the lower bound
    upper: float = float("inf")
    lower: float = float("-inf")
    decided_in: bool = False
    decided_out: bool = False


class RVAQ:
    """Algorithm 4 over a :class:`VideoRepository`."""

    def __init__(
        self,
        repository: VideoRepository,
        scoring: ScoringScheme | None = None,
        config: RankingConfig | None = None,
        *,
        enable_skip: bool = True,
    ) -> None:
        self._repo = repository
        self._scoring = scoring or PaperScoring()
        self._config = config or RankingConfig()
        self._enable_skip = enable_skip

    # -- public API ----------------------------------------------------------------

    @staticmethod
    def _split_labels(query: Query) -> tuple[str, list[str]]:
        """The primary action plus every other predicate label.

        Extra actions (the footnote-3 multi-action extension) rank through
        the same machinery as object predicates: their per-clip scores
        enter ``g`` alongside the object scores, and their individual
        sequences join the Eq. 12 intersection.
        """
        if not query.actions:
            raise QueryError("RVAQ expects at least one action predicate")
        primary, *extra = query.actions
        return primary, [*extra, *query.objects, *query.relationships]

    def result_sequences(self, query: Query) -> IntervalSet:
        """``P_q = P_a ⊗ P_o1 ⊗ … ⊗ P_oI`` (Eq. 12) in global clip ids."""
        primary, others = self._split_labels(query)
        sets = [self._repo.sequences(primary)]
        sets.extend(self._repo.sequences(label) for label in others)
        return intersect_all(sets)

    def top_k(self, query: Query, k: int | None = None) -> TopKResult:
        """The K highest-scoring result sequences (Algorithm 4)."""
        if k is None:
            k = self._config.default_k
        if k <= 0:
            raise QueryError(f"k must be positive; got {k}")
        scoring = self._scoring
        p_q = self.result_sequences(query)
        stats = AccessStats()
        if not p_q:
            return TopKResult(query=query, ranked=(), stats=stats, p_q=p_q)

        states = [
            _SequenceState(
                interval=iv,
                up_partial=scoring.identity,
                lo_partial=scoring.identity,
                up_missing=len(iv),
                lo_missing=len(iv),
            )
            for iv in p_q
        ]
        starts = [st.interval.start for st in states]

        # C_skip starts as every repository clip outside P_q (§4.3).
        skip: set[int] = set(
            self._repo.all_clips().difference(p_q).points()
        )
        primary, others = self._split_labels(query)
        iterator = TBClipIterator(
            action_table=self._repo.table(primary),
            object_tables=[self._repo.table(label) for label in others],
            scoring=scoring,
            skip=skip,
            stats=stats,
            # With K >= |P_q| membership is settled and only score
            # exactness remains, which the top drain alone provides.
            need_bottom=len(states) > k,
        )

        iterations = 0
        while True:
            c_top, s_top, c_btm, s_btm = iterator.next_pair()
            iterations += 1
            if c_top is None and c_btm is None and iterator.exhausted:
                break  # every clip of P_q processed: bounds are exact
            if c_top is not None:
                self._fold_top(states, starts, c_top, s_top)
            if c_btm is not None:
                self._fold_bottom(states, starts, c_btm, s_btm)
            self._refresh_bounds(states, s_top, s_btm, c_top, c_btm)
            if self._apply_decisions(states, skip, k):
                break

        ranked = sorted(
            states, key=lambda st: (st.lower, st.upper), reverse=True
        )[:k]
        return TopKResult(
            query=query,
            ranked=tuple(
                RankedSequence(
                    interval=st.interval,
                    lower_bound=st.lower,
                    upper_bound=st.upper,
                )
                for st in ranked
            ),
            stats=stats,
            p_q=p_q,
            iterations=iterations,
        )

    # -- bound maintenance ----------------------------------------------------------

    @staticmethod
    def _locate(starts: list[int], states: list[_SequenceState], cid: int) -> int | None:
        """Index of the sequence containing a clip id (binary search)."""
        pos = bisect_right(starts, cid) - 1
        if pos >= 0 and cid in states[pos].interval:
            return pos
        return None

    def _fold_top(
        self, states: list[_SequenceState], starts: list[int], cid: int, score: float
    ) -> None:
        pos = self._locate(starts, states, cid)
        if pos is None:
            return
        st = states[pos]
        st.up_partial = self._scoring.combine(st.up_partial, score)
        st.up_missing -= 1

    def _fold_bottom(
        self, states: list[_SequenceState], starts: list[int], cid: int, score: float
    ) -> None:
        pos = self._locate(starts, states, cid)
        if pos is None:
            return
        st = states[pos]
        st.lo_partial = self._scoring.combine(st.lo_partial, score)
        st.lo_missing -= 1

    def _refresh_bounds(
        self,
        states: list[_SequenceState],
        s_top: float,
        s_btm: float,
        c_top: int | None,
        c_btm: int | None,
    ) -> None:
        """Eqs. 13–14, plus the sub-sequence dominance strengthening.

        Upper bound: every clip not yet seen from the top scores at most
        ``s_top`` (Eq. 13).  Lower bound: the best of

        * Eq. 14 — every clip not yet seen from the bottom scores at least
          ``s_btm``;
        * the aggregate of the clips already folded from either direction —
          a *sub-sequence* of the sequence, whose score the full sequence
          dominates by the §4.1 contract.  This makes the leader's lower
          bound grow with the fast top walk instead of waiting for the
          bottom walk to reach its (high-scoring) clips, which is what lets
          ``C_skip`` prune losing sequences early.
        """
        for st in states:
            if st.decided_in or st.decided_out:
                continue
            if c_top is not None:
                st.upper = self._scoring.combine(
                    self._scoring.repeat(s_top, st.up_missing), st.up_partial
                )
            if st.up_missing == 0:
                st.upper = st.up_partial
            lower = max(st.up_partial, st.lo_partial)
            if c_btm is not None:
                lower = max(
                    lower,
                    self._scoring.combine(
                        self._scoring.repeat(s_btm, st.lo_missing),
                        st.lo_partial,
                    ),
                )
            if st.lo_missing == 0:
                lower = max(lower, st.lo_partial)
            if st.up_missing == 0:
                lower = st.upper  # all clips folded from the top: exact
            st.lower = max(st.lower, lower)

    # -- decision frontier ---------------------------------------------------------------

    def _apply_decisions(
        self, states: list[_SequenceState], skip: set[int], k: int
    ) -> bool:
        """Maintain ``PQ_lo^K`` / ``PQ_up^¬K``, grow ``C_skip`` and test the
        stopping condition (Eq. 15)."""
        order = sorted(range(len(states)), key=lambda i: states[i].lower, reverse=True)
        top_set = set(order[:k])
        b_lo_k = (
            states[order[k - 1]].lower if len(order) >= k else float("-inf")
        )
        rest = order[k:]
        b_up_not_k = max(
            (states[i].upper for i in rest), default=float("-inf")
        )

        if self._enable_skip:
            for i, st in enumerate(states):
                if st.decided_in or st.decided_out:
                    continue
                if st.upper < b_lo_k:
                    st.decided_out = True
                    skip.update(iter(st.interval))
                elif (
                    rest
                    and i in top_set
                    and st.lower > b_up_not_k
                    and not self._config.require_exact_scores
                ):
                    st.decided_in = True
                    skip.update(iter(st.interval))

        if len(states) <= k:
            # Every sequence is in the answer; keep refining until scores
            # are exact — this is why RVAQ converges to Pq-Traverse as K
            # approaches the number of result sequences (Table 8's last
            # column).
            return all(st.lower == st.upper for st in states)
        if b_lo_k < b_up_not_k:
            return False
        if self._config.require_exact_scores:
            # Membership is decided; keep refining the winners until their
            # scores (and hence their order) are exact.
            return all(states[i].lower == states[i].upper for i in top_set)
        return True
