"""Clip-granularity streaming access to a video.

Algorithm 1 consumes the stream through exactly two operations —
``X.end()`` and ``X.next()`` — so that is the interface exposed here, plus
the Python iterator protocol for idiomatic use.  A stream can be bounded (a
fixed video processed online) or rewound for repeated experiments.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import VideoModelError
from repro.video.model import ClipView, VideoMeta


class ClipStream:
    """Iterates the clips of a video in order, like a live camera feed.

    ``start_clip`` / ``stop_clip`` bound the stream (``stop_clip`` is
    exclusive; ``None`` means the end of the video), which the experiment
    harness uses to stream selected spans.
    """

    def __init__(
        self,
        video: VideoMeta,
        start_clip: int = 0,
        stop_clip: int | None = None,
    ) -> None:
        stop = video.n_clips if stop_clip is None else stop_clip
        if not 0 <= start_clip <= stop <= video.n_clips:
            raise VideoModelError(
                f"stream bounds [{start_clip}, {stop}) invalid for video "
                f"{video.video_id!r} with {video.n_clips} clips"
            )
        self._video = video
        self._start = start_clip
        self._stop = stop
        self._cursor = start_clip

    @property
    def video(self) -> VideoMeta:
        return self._video

    @property
    def position(self) -> int:
        """Clip id the next ``next()`` call will return."""
        return self._cursor

    def end(self) -> bool:
        """True when the stream is exhausted (Algorithm 1's ``X.end()``)."""
        return self._cursor >= self._stop

    def next(self) -> ClipView:
        """The next clip in the stream (Algorithm 1's ``X.next()``)."""
        if self.end():
            raise VideoModelError("next() called on an exhausted stream")
        view = ClipView(self._video, self._cursor)
        self._cursor += 1
        return view

    def rewind(self) -> None:
        """Reset to the first clip (experiments re-run the same stream)."""
        self._cursor = self._start

    def __iter__(self) -> Iterator[ClipView]:
        while not self.end():
            yield self.next()

    def __len__(self) -> int:
        return self._stop - self._start
