"""Self-check: the engine's own source is clean under the full rule set.

This is the CI gate in test form — no baseline, every rule active.  If a
future change reintroduces an unguarded model invocation, an incomplete
``state_dict``, unseeded randomness, a stray builtin raise or a float
``==``, this test names it before the PR lands.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_tests_are_clean_without_a_baseline() -> None:
    report = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert report.files_checked > 100  # the walk really saw the repo
    rendered = report.render_text()
    assert report.parse_errors == [], rendered
    assert report.findings == [], rendered


def test_every_rule_actually_ran_over_src() -> None:
    """Guards against a rule silently dropping out of the registry."""
    report = lint_paths([REPO_ROOT / "src"])
    assert set(report.counts()) >= {"RL001", "RL002", "RL003", "RL004", "RL005"}
