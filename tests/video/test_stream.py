"""Clip streaming: the Algorithm 1 interface (end / next)."""

from __future__ import annotations

import pytest

from repro.errors import VideoModelError
from repro.video.model import VideoGeometry, VideoMeta
from repro.video.stream import ClipStream

META = VideoMeta(video_id="v", n_frames=500, geometry=VideoGeometry())  # 10 clips


class TestStreaming:
    def test_full_pass(self):
        stream = ClipStream(META)
        seen = [clip.clip_id for clip in stream]
        assert seen == list(range(10))
        assert stream.end()

    def test_next_after_end_raises(self):
        stream = ClipStream(META, start_clip=9)
        stream.next()
        with pytest.raises(VideoModelError):
            stream.next()

    def test_bounded_stream(self):
        stream = ClipStream(META, start_clip=2, stop_clip=5)
        assert len(stream) == 3
        assert [c.clip_id for c in stream] == [2, 3, 4]

    def test_rewind(self):
        stream = ClipStream(META)
        list(stream)
        stream.rewind()
        assert not stream.end()
        assert stream.next().clip_id == 0

    def test_position(self):
        stream = ClipStream(META)
        stream.next()
        assert stream.position == 1

    def test_invalid_bounds(self):
        with pytest.raises(VideoModelError):
            ClipStream(META, start_clip=5, stop_clip=3)
        with pytest.raises(VideoModelError):
            ClipStream(META, stop_clip=11)
