"""RL002 fixture — checkpoint classes with and without full coverage."""


class BadIncomplete:
    def __init__(self, w):
        self._count = 0
        self._forgotten = []  # line 7: finding (not in state_dict/exclude)
        self._w = w

    def state_dict(self):
        return {"count": self._count, "w": self._w}

    def load_state_dict(self, state):
        self._count = state["count"]
        self._w = state["w"]


class GoodCovered:
    def __init__(self):
        self._count = 0
        self._open_run = None

    def state_dict(self):
        return {"count": self._count, "open_run": self._open_run}

    def load_state_dict(self, state):
        self._count = state["count"]
        self._open_run = state["open_run"]


class GoodExcluded:
    _CHECKPOINT_EXCLUDE = frozenset({"_derived"})

    def __init__(self, config):
        self._derived = config.value
        self._count = 0

    def state_dict(self):
        return {"count": self._count}

    def load_state_dict(self, state):
        self._count = state["count"]


class GoodClassmethodRestore:
    def __init__(self):
        self._tail = []

    def state_dict(self):
        return {"tail": list(self._tail)}

    @classmethod
    def from_state_dict(cls, state):
        obj = cls()
        obj._tail = list(state["tail"])
        return obj


class NotACheckpointClass:
    """Only state_dict, no restore method: the contract does not apply."""

    def __init__(self):
        self._anything = 1

    def state_dict(self):
        return {}
